module IntSet = Set.Make (Int)
module Corpus = Pj_index.Corpus
module Inverted_index = Pj_index.Inverted_index
module Searcher = Pj_engine.Searcher

type config = {
  dir : string option;
  memtable_capacity : int;
  merge_threshold : int;
  background_merge : bool;
  mmap_segments : bool;
}

let default_config =
  { dir = None; memtable_capacity = 256; merge_threshold = 4;
    background_merge = true; mmap_segments = false }

(* A sealed, immutable doc-id range with its own inverted index.
   [dead] holds the ids a compaction has already purged from the
   postings; tombstones of later deletions stay in the snapshot-level
   set until the next merge folds them in. *)
type segment = {
  seg_base : int;
  seg_len : int;
  dead : IntSet.t;
  file : string option; (* None in a memory-only index *)
  searcher : Searcher.t;
}

(* What a query observes, all-or-nothing: published with one atomic
   store, never mutated afterwards. Readers pay one [Atomic.get] and
   are immune to every concurrent add/delete/flush/merge. *)
type snapshot = {
  generation : int;
  segments : segment array; (* ascending, tiling [0, mem_base) *)
  mem_base : int;
  mem_len : int;
  mem : Searcher.t option; (* None iff mem_len = 0 *)
  tombstones : IntSet.t;   (* deleted but not yet compacted *)
}

type t = {
  config : config;
  corpus : Corpus.t;
  snap : snapshot Atomic.t;
  (* Writer lock: serializes add/delete/flush and merge installation
     (all snapshot publications). Queries never take it. *)
  writer : Mutex.t;
  (* Merge lock: at most one compaction in flight; held across the
     whole plan/build/install so segment positions stay stable. Taken
     before [writer], never the other way. *)
  merge_lock : Mutex.t;
  hooks : (int -> unit) list Atomic.t;
  file_seq : int Atomic.t;
  adds : int Atomic.t;
  deletes : int Atomic.t;
  flushes : int Atomic.t;
  merges : int Atomic.t;
  merge_errors : int Atomic.t;
  (* True when the on-disk manifest lags the in-memory tombstone set
     (deletes are made durable by the next flush or merge). *)
  mutable durable_dirty : bool;
  (* Background merger machinery; [m] guards [stopping] and the
     condition. *)
  m : Mutex.t;
  c : Condition.t;
  mutable stopping : bool;
  mutable merger : unit Domain.t option;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let with_writer t f = with_lock t.writer f

let notify t gen = List.iter (fun f -> f gen) (Atomic.get t.hooks)

let on_swap t f = Atomic.set t.hooks (Atomic.get t.hooks @ [ f ])

let generation t = (Atomic.get t.snap).generation

(* --- persistence ------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let segment_filename id = Printf.sprintf "seg-%06d.seg" id

let segment_file_id name =
  try Scanf.sscanf name "seg-%d.seg%!" (fun n -> Some n)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let words_of_doc vocab (d : Pj_text.Document.t) =
  Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens

(* With [mmap_segments], a sealed segment's searcher runs over the
   block-compressed postings of its own file, mapped zero-copy
   ([Pj_ondisk.Segment_codec]) — byte-identical results to the
   in-memory [build_docs] fragment, but the postings stay on disk. The
   mapping outlives any later unlink of the file (a compaction removing
   a replaced segment), so in-flight snapshots stay valid. *)
let mmap_searcher ~corpus ~dir name =
  let ms = Pj_ondisk.Segment_codec.open_file (Filename.concat dir name) in
  Searcher.create (Pj_ondisk.Segment_codec.index ms corpus)

(* Write one segment's documents (dead ones as empty token sequences,
   so recovery keeps exact live-document accounting). *)
let write_segment_file t ~failpoint ~dir ~base ~dead docs =
  let vocab = Corpus.vocab t.corpus in
  let words =
    Array.map
      (fun (d : Pj_text.Document.t) ->
        if IntSet.mem d.Pj_text.Document.id dead then [||]
        else words_of_doc vocab d)
      docs
  in
  let name = segment_filename (Atomic.fetch_and_add t.file_seq 1) in
  Segment_file.write ~failpoint
    (Filename.concat dir name)
    { Segment_file.base; docs = words; dead = IntSet.elements dead };
  name

(* Publish a manifest naming [segments] — caller holds the writer lock,
   so the manifest always matches the snapshot installed right after.
   No-op for a memory-only index. *)
let write_manifest_locked t ~generation ~segments ~tombstones =
  match t.config.dir with
  | None -> ()
  | Some dir ->
      let entries =
        Array.to_list segments
        |> List.map (fun sg ->
               {
                 Manifest.file = Option.get sg.file;
                 base = sg.seg_base;
                 len = sg.seg_len;
               })
      in
      let vocab = Corpus.vocab t.corpus in
      let words =
        List.init (Pj_text.Vocab.size vocab) (Pj_text.Vocab.word vocab)
      in
      Manifest.write ~dir
        { Manifest.generation; vocab = words; segments = entries;
          tombstones = IntSet.elements tombstones };
      t.durable_dirty <- false

(* --- memtable ---------------------------------------------------------- *)

(* Rebuild the memtable's searchable index from the corpus tail. The
   corpus is the single source of truth: deriving [mem_len] from
   [Corpus.size] (not the previous snapshot) means a failed publication
   self-heals on the next add. Cost is O(memtable tokens) thanks to the
   sparse [build_docs] layout, bounded by [memtable_capacity]. *)
let rebuild_mem_locked t ~mem_base =
  let mem_len = Corpus.size t.corpus - mem_base in
  if mem_len = 0 then (0, None)
  else
    let docs = Corpus.docs_slice t.corpus ~pos:mem_base ~len:mem_len in
    (mem_len, Some (Searcher.create (Inverted_index.build_docs t.corpus docs)))

let signal_merger t =
  with_lock t.m (fun () -> Condition.broadcast t.c)

(* Seal the memtable into a segment (durably, when a directory is
   configured) and/or persist a tombstone set the manifest lags behind.
   Caller holds the writer lock. Any failure — injected or real —
   leaves the snapshot unpublished, so the memtable stays intact and
   the operation can simply be retried. *)
let flush_locked t =
  let s = Atomic.get t.snap in
  if s.mem_len = 0 then begin
    (* Nothing to seal; a manifest write may still be owed for
       deletes since the last flush. *)
    if t.durable_dirty then begin
      let gen = s.generation + 1 in
      write_manifest_locked t ~generation:gen ~segments:s.segments
        ~tombstones:s.tombstones;
      Atomic.set t.snap { s with generation = gen };
      Atomic.incr t.flushes;
      gen
    end
    else s.generation
  end
  else begin
    let searcher = match s.mem with Some sr -> sr | None -> assert false in
    let file =
      match t.config.dir with
      | None -> None
      | Some dir ->
          let docs =
            Corpus.docs_slice t.corpus ~pos:s.mem_base ~len:s.mem_len
          in
          Some
            (write_segment_file t ~failpoint:"live.flush" ~dir ~base:s.mem_base
               ~dead:IntSet.empty docs)
    in
    (* The sealed segment can drop the memtable's heap index and serve
       off its own freshly written file. *)
    let searcher =
      match (file, t.config.dir) with
      | Some name, Some dir when t.config.mmap_segments ->
          mmap_searcher ~corpus:t.corpus ~dir name
      | _ -> searcher
    in
    let seg =
      { seg_base = s.mem_base; seg_len = s.mem_len; dead = IntSet.empty;
        file; searcher }
    in
    let segments = Array.append s.segments [| seg |] in
    let gen = s.generation + 1 in
    write_manifest_locked t ~generation:gen ~segments
      ~tombstones:s.tombstones;
    Atomic.set t.snap
      {
        generation = gen;
        segments;
        mem_base = s.mem_base + s.mem_len;
        mem_len = 0;
        mem = None;
        tombstones = s.tombstones;
      };
    Atomic.incr t.flushes;
    signal_merger t;
    gen
  end

let flush t =
  let gen = with_writer t (fun () -> flush_locked t) in
  notify t gen;
  gen

let add_locked t tokens =
  let s = Atomic.get t.snap in
  let d = Corpus.add_tokens t.corpus tokens in
  Atomic.incr t.adds;
  let mem_len, mem = rebuild_mem_locked t ~mem_base:s.mem_base in
  let gen = s.generation + 1 in
  Atomic.set t.snap { s with generation = gen; mem_len; mem };
  let gen =
    if mem_len >= t.config.memtable_capacity then flush_locked t else gen
  in
  (d.Pj_text.Document.id, gen)

let add t tokens =
  let id, gen = with_writer t (fun () -> add_locked t tokens) in
  notify t gen;
  id

let add_batch t docs =
  match docs with
  | [] -> ()
  | _ ->
      let gen =
        with_writer t (fun () ->
            let s = Atomic.get t.snap in
            List.iter
              (fun tokens ->
                ignore (Corpus.add_tokens t.corpus tokens);
                Atomic.incr t.adds)
              docs;
            let mem_len, mem = rebuild_mem_locked t ~mem_base:s.mem_base in
            let gen = s.generation + 1 in
            Atomic.set t.snap { s with generation = gen; mem_len; mem };
            if mem_len >= t.config.memtable_capacity then flush_locked t
            else gen)
      in
      notify t gen

(* A document is gone when it was never added, is already tombstoned,
   or was compacted away by a merge. *)
let find_segment segments id =
  Array.find_opt
    (fun sg -> id >= sg.seg_base && id < sg.seg_base + sg.seg_len)
    segments

let delete t id =
  let r =
    with_writer t (fun () ->
        let s = Atomic.get t.snap in
        if id < 0 || id >= Corpus.size t.corpus then Error `Not_found
        else if IntSet.mem id s.tombstones then Error `Not_found
        else if
          id < s.mem_base
          && (match find_segment s.segments id with
             | Some sg -> IntSet.mem id sg.dead
             | None -> false)
        then Error `Not_found
        else begin
          let gen = s.generation + 1 in
          if t.config.dir <> None then t.durable_dirty <- true;
          Atomic.set t.snap
            { s with generation = gen; tombstones = IntSet.add id s.tombstones };
          Atomic.incr t.deletes;
          Ok gen
        end)
  in
  match r with
  | Ok gen ->
      notify t gen;
      Ok ()
  | Error e -> Error e

(* --- merging ----------------------------------------------------------- *)

(* Compact the cheapest adjacent pair once the sealed stack exceeds the
   threshold — a tiered policy in miniature: repeatedly folding the two
   smallest neighbours keeps total merge work O(n log n) in documents
   merged while preserving doc-id order. *)
let pick_merge s threshold =
  let n = Array.length s.segments in
  if n <= threshold then None
  else begin
    let live i =
      s.segments.(i).seg_len - IntSet.cardinal s.segments.(i).dead
    in
    let best = ref 0 and best_cost = ref max_int in
    for i = 0 to n - 2 do
      let c = live i + live (i + 1) in
      if c < !best_cost then begin
        best := i;
        best_cost := c
      end
    done;
    Some !best
  end

let merge_needed t =
  pick_merge (Atomic.get t.snap) t.config.merge_threshold <> None

(* One compaction step: plan under the writer lock, build and write the
   merged segment outside every lock (queries and writers proceed
   untouched), install under the writer lock. Deletions that land in
   the range *during* the build stay in the tombstone set — only the
   tombstones captured at plan time are folded into [dead] and removed.
   Returns false when no merge is needed. *)
let merge_step t =
  with_lock t.merge_lock (fun () ->
      let plan =
        with_writer t (fun () ->
            let s = Atomic.get t.snap in
            match pick_merge s t.config.merge_threshold with
            | None -> None
            | Some i ->
                let a = s.segments.(i) and b = s.segments.(i + 1) in
                let base = a.seg_base in
                let len = a.seg_len + b.seg_len in
                let tomb =
                  IntSet.filter
                    (fun id -> id >= base && id < base + len)
                    s.tombstones
                in
                let dead = IntSet.union (IntSet.union a.dead b.dead) tomb in
                let docs = Corpus.docs_slice t.corpus ~pos:base ~len in
                Some (i, base, len, dead, tomb, docs))
      in
      match plan with
      | None -> false
      | Some (i, base, len, dead, tomb, docs) ->
          Pj_util.Failpoint.hit "live.merge";
          let file =
            match t.config.dir with
            | None -> None
            | Some dir ->
                Some
                  (write_segment_file t ~failpoint:"live.merge" ~dir ~base
                     ~dead docs)
          in
          let searcher =
            match (file, t.config.dir) with
            | Some name, Some dir when t.config.mmap_segments ->
                mmap_searcher ~corpus:t.corpus ~dir name
            | _ ->
                Searcher.create
                  (Inverted_index.build_docs
                     ~skip:(fun id -> IntSet.mem id dead)
                     t.corpus docs)
          in
          let old_files, gen =
            with_writer t (fun () ->
                let s = Atomic.get t.snap in
                let a = s.segments.(i) and b = s.segments.(i + 1) in
                (* Only the merger replaces sealed segments and we hold
                   the merge lock; flush only appends, so positions i
                   and i+1 still name the planned pair. *)
                assert (a.seg_base = base && a.seg_len + b.seg_len = len);
                let merged =
                  { seg_base = base; seg_len = len; dead; file; searcher }
                in
                let n = Array.length s.segments in
                let segments =
                  Array.concat
                    [
                      Array.sub s.segments 0 i;
                      [| merged |];
                      Array.sub s.segments (i + 2) (n - i - 2);
                    ]
                in
                let tombstones = IntSet.diff s.tombstones tomb in
                let gen = s.generation + 1 in
                write_manifest_locked t ~generation:gen ~segments ~tombstones;
                Atomic.set t.snap { s with generation = gen; segments; tombstones };
                Atomic.incr t.merges;
                (List.filter_map (fun sg -> sg.file) [ a; b ], gen))
          in
          (* The replaced files are no longer named by any manifest. *)
          (match t.config.dir with
          | Some dir ->
              List.iter
                (fun f ->
                  try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
                old_files
          | None -> ());
          notify t gen;
          true)

let merge_now t = merge_step t

(* Run compactions until the policy is satisfied and no background step
   is in flight (the merge lock serializes with the merger domain). *)
let quiesce t = while merge_step t do () done

let merger_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while not t.stopping && not (merge_needed t) do
      Condition.wait t.c t.m
    done;
    let stop = t.stopping in
    Mutex.unlock t.m;
    if not stop then begin
      (try ignore (merge_step t)
       with _ ->
         (* Injected faults and I/O errors leave the pre-merge snapshot
            intact; count, back off briefly (an armed failpoint would
            otherwise hot-spin), retry on the next round. *)
         Atomic.incr t.merge_errors;
         Unix.sleepf 0.05);
      loop ()
    end
  in
  loop ()

(* --- construction ------------------------------------------------------ *)

let make_t config corpus snap =
  {
    config;
    corpus;
    snap = Atomic.make snap;
    writer = Mutex.create ();
    merge_lock = Mutex.create ();
    hooks = Atomic.make [];
    file_seq = Atomic.make 0;
    adds = Atomic.make 0;
    deletes = Atomic.make 0;
    flushes = Atomic.make 0;
    merges = Atomic.make 0;
    merge_errors = Atomic.make 0;
    durable_dirty = false;
    m = Mutex.create ();
    c = Condition.create ();
    stopping = false;
    merger = None;
  }

let spawn_merger t =
  if t.config.background_merge then
    t.merger <- Some (Domain.spawn (fun () -> merger_loop t))

let create ?(config = default_config) () =
  (match config.dir with Some dir -> mkdir_p dir | None -> ());
  let snap =
    {
      generation = 0;
      segments = [||];
      mem_base = 0;
      mem_len = 0;
      mem = None;
      tombstones = IntSet.empty;
    }
  in
  let t = make_t config (Corpus.create ()) snap in
  spawn_merger t;
  t

let open_dir ?(config = default_config) dir =
  mkdir_p dir;
  let config = { config with dir = Some dir } in
  match Manifest.read ~dir with
  | None -> create ~config ()
  | Some m ->
      let corpus = Corpus.create () in
      (* Replaying the persisted vocabulary first reproduces the very
         token ids (hence match payloads) of the original process —
         segment words alone would shift ids wherever a compaction
         dropped a word's only occurrences. *)
      let vocab = Corpus.vocab corpus in
      List.iter
        (fun w -> ignore (Pj_text.Vocab.intern vocab w))
        m.Manifest.vocab;
      let max_file = ref (-1) in
      let segments =
        List.map
          (fun (e : Manifest.entry) ->
            let sf = Segment_file.read (Filename.concat dir e.Manifest.file) in
            if sf.Segment_file.base <> e.Manifest.base
               || Array.length sf.Segment_file.docs <> e.Manifest.len
            then
              failwith
                (Printf.sprintf "Live: segment %s disagrees with the manifest"
                   e.Manifest.file);
            (* Re-interning words in document order reproduces the very
               same token ids the index was built with. *)
            Array.iter
              (fun words -> ignore (Corpus.add_tokens corpus words))
              sf.Segment_file.docs;
            (match segment_file_id e.Manifest.file with
            | Some n -> if n > !max_file then max_file := n
            | None -> ());
            let dead = IntSet.of_list sf.Segment_file.dead in
            let searcher =
              (* A v1 file carries no postings section; fall back to
                 the heap rebuild ([read] above already validated the
                 file, so the only mmap failure mode is the version). *)
              match
                if config.mmap_segments then
                  Some (mmap_searcher ~corpus ~dir e.Manifest.file)
                else None
              with
              | Some sr -> sr
              | None | (exception Failure _) ->
                  let docs =
                    Corpus.docs_slice corpus ~pos:e.Manifest.base
                      ~len:e.Manifest.len
                  in
                  Searcher.create
                    (Inverted_index.build_docs
                       ~skip:(fun id -> IntSet.mem id dead)
                       corpus docs)
            in
            {
              seg_base = e.Manifest.base;
              seg_len = e.Manifest.len;
              dead;
              file = Some e.Manifest.file;
              searcher;
            })
          m.Manifest.segments
      in
      let snap =
        {
          generation = m.Manifest.generation;
          segments = Array.of_list segments;
          mem_base = Corpus.size corpus;
          mem_len = 0;
          mem = None;
          tombstones = IntSet.of_list m.Manifest.tombstones;
        }
      in
      let t = make_t config corpus snap in
      Atomic.set t.file_seq (!max_file + 1);
      (* Orphans from interrupted flushes/merges: segment files no
         manifest names, plus stale .tmp files. Best-effort removal. *)
      let named =
        List.map (fun (e : Manifest.entry) -> e.Manifest.file)
          m.Manifest.segments
      in
      Array.iter
        (fun f ->
          let stale_tmp = Filename.check_suffix f ".tmp" in
          let orphan_seg =
            segment_file_id f <> None && not (List.mem f named)
          in
          if stale_tmp || orphan_seg then
            try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      spawn_merger t;
      t

let close t =
  let merger =
    with_lock t.m (fun () ->
        t.stopping <- true;
        Condition.broadcast t.c;
        let d = t.merger in
        t.merger <- None;
        d)
  in
  Option.iter Domain.join merger

(* --- search ------------------------------------------------------------ *)

exception Frag_timeout

let compare_hits (a : Searcher.hit) (b : Searcher.hit) =
  match compare b.Searcher.score a.Searcher.score with
  | 0 -> compare a.Searcher.doc_id b.Searcher.doc_id
  | c -> c

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Search one immutable snapshot: every fragment (sealed segments, then
   the memtable) runs the full DAAT + max-score search, cascading one
   shared threshold so later fragments prune against the best bound so
   far; tombstones are hidden by the [accept] filter. The merge by
   (score desc, doc id asc) is byte-identical to a monolithic search
   over the surviving documents — same vocabulary, same global doc ids,
   same strict cross-fragment prune as [Shard_searcher]. *)
let search_snapshot ?deadline ~k ~dedup ~prune s scoring q =
  if k = 0 then Ok []
  else begin
    let accept =
      if IntSet.is_empty s.tombstones then None
      else Some (fun doc_id -> not (IntSet.mem doc_id s.tombstones))
    in
    let threshold = Atomic.make Float.neg_infinity in
    let fragments =
      Array.to_list (Array.map (fun sg -> sg.searcher) s.segments)
      @ (match s.mem with Some sr -> [ sr ] | None -> [])
    in
    try
      let hits =
        List.concat_map
          (fun sr ->
            match
              Searcher.search_fragment ?deadline ~threshold ?accept ~k ~dedup
                ~prune sr scoring q
            with
            | Ok hits -> hits
            | Error `Timeout -> raise Frag_timeout)
          fragments
      in
      Ok (take k (List.sort compare_hits hits))
    with Frag_timeout -> Error `Timeout
  end

let search ?(k = 10) ?(dedup = true) ?(prune = true) t scoring q =
  match
    search_snapshot ~k ~dedup ~prune (Atomic.get t.snap) scoring q
  with
  | Ok hits -> hits
  | Error `Timeout -> assert false (* no deadline *)

let search_within ?(k = 10) ?(dedup = true) ?(prune = true) ~deadline t scoring
    q =
  search_snapshot ~deadline ~k ~dedup ~prune (Atomic.get t.snap) scoring q

(* --- stats ------------------------------------------------------------- *)

type stats = {
  generation : int;
  docs : int;
  total_docs : int;
  segments : int;
  segment_docs : int;
  memtable_docs : int;
  tombstones : int;
  merges : int;
  flushes : int;
  merge_errors : int;
}

let stats t =
  let s = Atomic.get t.snap in
  let segment_docs =
    Array.fold_left
      (fun acc sg -> acc + sg.seg_len - IntSet.cardinal sg.dead)
      0 s.segments
  in
  let tombstones = IntSet.cardinal s.tombstones in
  {
    generation = s.generation;
    docs = segment_docs + s.mem_len - tombstones;
    total_docs = s.mem_base + s.mem_len;
    segments = Array.length s.segments;
    segment_docs;
    memtable_docs = s.mem_len;
    tombstones;
    merges = Atomic.get t.merges;
    flushes = Atomic.get t.flushes;
    merge_errors = Atomic.get t.merge_errors;
  }

let corpus t = t.corpus
