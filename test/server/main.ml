let () =
  Alcotest.run "proxjoin.server"
    [
      ("protocol", Test_protocol.suite);
      ("work_queue", Test_work_queue.suite);
      ("worker_pool", Test_worker_pool.suite);
      ("result_cache", Test_result_cache.suite);
      ("e2e", Test_e2e.suite);
    ]
