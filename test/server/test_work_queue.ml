open Pj_server

let test_fifo () =
  let q = Work_queue.create ~capacity:8 in
  List.iter (fun i -> Alcotest.(check bool) "pushed" true (Work_queue.try_push q i)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Work_queue.length q);
  Alcotest.(check (option int)) "first" (Some 1) (Work_queue.pop q);
  Alcotest.(check (option int)) "second" (Some 2) (Work_queue.pop q);
  Alcotest.(check (option int)) "third" (Some 3) (Work_queue.pop q)

let test_capacity_rejects () =
  let q = Work_queue.create ~capacity:2 in
  Alcotest.(check bool) "1" true (Work_queue.try_push q 1);
  Alcotest.(check bool) "2" true (Work_queue.try_push q 2);
  Alcotest.(check bool) "full" false (Work_queue.try_push q 3);
  ignore (Work_queue.pop q);
  Alcotest.(check bool) "slot freed" true (Work_queue.try_push q 3)

let test_close_drains_then_none () =
  let q = Work_queue.create ~capacity:4 in
  ignore (Work_queue.try_push q "a");
  ignore (Work_queue.try_push q "b");
  Work_queue.close q;
  Alcotest.(check bool) "closed rejects" false (Work_queue.try_push q "c");
  Alcotest.(check (option string)) "drains a" (Some "a") (Work_queue.pop q);
  Alcotest.(check (option string)) "drains b" (Some "b") (Work_queue.pop q);
  Alcotest.(check (option string)) "then none" None (Work_queue.pop q)

let test_close_wakes_blocked_consumer () =
  let q = Work_queue.create ~capacity:1 in
  let result = ref (Some 42) in
  let consumer = Thread.create (fun () -> result := Work_queue.pop q) () in
  Thread.delay 0.05;
  Work_queue.close q;
  Thread.join consumer;
  Alcotest.(check (option int)) "woken with None" None !result

let test_cross_domain_transfer () =
  let q = Work_queue.create ~capacity:16 in
  let n = 1000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and count = ref 0 in
        let rec go () =
          match Work_queue.pop q with
          | None -> (!sum, !count)
          | Some v ->
              sum := !sum + v;
              incr count;
              go ()
        in
        go ())
  in
  let pushed = ref 0 in
  for i = 1 to n do
    (* Spin on a full queue: the consumer drains concurrently. *)
    while not (Work_queue.try_push q i) do
      Thread.yield ()
    done;
    pushed := !pushed + i
  done;
  Work_queue.close q;
  let sum, count = Domain.join consumer in
  Alcotest.(check int) "all items" n count;
  Alcotest.(check int) "no corruption" !pushed sum

(* Stress the close/drain race: producers hammering [try_push] while
   consumers drain and a third party calls [close] mid-stream. Every
   item a producer saw accepted must be popped exactly once (counted
   and summed — nothing lost in the closing window, nothing
   duplicated), and every blocked consumer must wake with [None] —
   termination of the joins below is that assertion. *)
let test_close_drain_race () =
  let consumers = 4 and producers = 4 and per_producer = 2000 in
  for round = 0 to 9 do
    let q = Work_queue.create ~capacity:8 in
    let closed_flag = Atomic.make false in
    let accepted_sum = Atomic.make 0 and accepted_count = Atomic.make 0 in
    let consumer_domains =
      List.init consumers (fun _ ->
          Domain.spawn (fun () ->
              let sum = ref 0 and count = ref 0 in
              let rec go () =
                match Work_queue.pop q with
                | None -> (!sum, !count)
                | Some v ->
                    sum := !sum + v;
                    incr count;
                    go ()
              in
              go ()))
    in
    let producer_threads =
      List.init producers (fun p ->
          Thread.create
            (fun () ->
              for i = 1 to per_producer do
                let item = (p * per_producer) + i in
                let rec attempt () =
                  if Work_queue.try_push q item then begin
                    (* Only items the queue accepted are owed to a
                       consumer; an item abandoned because the queue
                       closed under us is not. *)
                    ignore (Atomic.fetch_and_add accepted_sum item);
                    Atomic.incr accepted_count
                  end
                  else if not (Atomic.get closed_flag) then begin
                    Thread.yield ();
                    attempt ()
                  end
                in
                attempt ()
              done)
            ())
    in
    (* Close somewhere in the middle of the stream; vary the window a
       little between rounds so the race lands at different points. *)
    Thread.delay (0.002 +. (0.001 *. float_of_int round));
    Atomic.set closed_flag true;
    Work_queue.close q;
    List.iter Thread.join producer_threads;
    let popped = List.map Domain.join consumer_domains in
    let popped_sum = List.fold_left (fun a (s, _) -> a + s) 0 popped in
    let popped_count = List.fold_left (fun a (_, c) -> a + c) 0 popped in
    Alcotest.(check int)
      (Printf.sprintf "round %d: accepted = popped (count)" round)
      (Atomic.get accepted_count) popped_count;
    Alcotest.(check int)
      (Printf.sprintf "round %d: accepted = popped (sum)" round)
      (Atomic.get accepted_sum) popped_sum
  done

let suite =
  [
    ("work_queue: fifo", `Quick, test_fifo);
    ("work_queue: capacity", `Quick, test_capacity_rejects);
    ("work_queue: close drains", `Quick, test_close_drains_then_none);
    ("work_queue: close wakes", `Quick, test_close_wakes_blocked_consumer);
    ("work_queue: cross-domain", `Quick, test_cross_domain_transfer);
    ("work_queue: close/drain race", `Quick, test_close_drain_race);
  ]
