open Pj_server

let test_hit_miss_counters () =
  let c = Result_cache.create ~capacity:4 in
  Alcotest.(check (option string)) "cold" None (Result_cache.find c "k1");
  Result_cache.add c "k1" "HITS 0";
  Alcotest.(check (option string)) "warm" (Some "HITS 0") (Result_cache.find c "k1");
  ignore (Result_cache.find c "k1");
  ignore (Result_cache.find c "k2");
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 2 misses;
  Alcotest.(check int) "len" 1 len

let test_eviction () =
  let c = Result_cache.create ~capacity:2 in
  Result_cache.add c "a" "HITS 1 1:1";
  Result_cache.add c "b" "HITS 1 2:1";
  Result_cache.add c "c" "HITS 1 3:1";
  Alcotest.(check (option string)) "a evicted" None (Result_cache.find c "a");
  Alcotest.(check (option string))
    "c kept" (Some "HITS 1 3:1") (Result_cache.find c "c")

let test_clear_resets () =
  let c = Result_cache.create ~capacity:2 in
  Result_cache.add c "a" "HITS 0";
  ignore (Result_cache.find c "a");
  Result_cache.clear c;
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check (list int)) "reset" [ 0; 0; 0 ] [ hits; misses; len ]

(* Regression for the degradation work: a response that describes one
   request's luck — TIMEOUT, OK-DEGRADED, BUSY, ERR — must never be
   replayed from the cache, however it got offered to [add]. *)
let test_never_caches_partial_responses () =
  let c = Result_cache.create ~capacity:8 in
  let refused =
    [
      Protocol.timeout;
      Protocol.busy;
      Protocol.err "boom";
      Protocol.ok_degraded ~failed_shards:[ 1; 3 ] [];
      "OK-DEGRADED shards=0 HITS 1 7:0.5";
      "HITS";
      (* no trailing space: not a well-formed HITS line *)
      "";
    ]
  in
  List.iteri
    (fun i r ->
      let key = Printf.sprintf "k%d" i in
      Result_cache.add c key r;
      Alcotest.(check (option string))
        (Printf.sprintf "refused %S" r)
        None (Result_cache.find c key))
    refused;
  let _, _, len = Result_cache.stats c in
  Alcotest.(check int) "nothing stored" 0 len;
  (* ... while a complete answer is stored as before. *)
  Result_cache.add c "good" "HITS 2 1:0.5 2:0.25";
  Alcotest.(check (option string))
    "complete answer cached" (Some "HITS 2 1:0.5 2:0.25")
    (Result_cache.find c "good")

(* Regression for live ingestion: a response cached before a document
   was added must never be served after the index generation bumps —
   the stale entry has to become unreachable, not merely eventually
   evicted. *)
let test_generation_invalidates () =
  let c = Result_cache.create ~capacity:8 in
  Alcotest.(check int) "starts at generation 0" 0 (Result_cache.generation c);
  Result_cache.add c "q" "HITS 1 1:0.5";
  Alcotest.(check (option string))
    "served at generation 0" (Some "HITS 1 1:0.5") (Result_cache.find c "q");
  (* An ingest bumps the generation: the pre-ingest response is gone. *)
  Result_cache.set_generation c 1;
  Alcotest.(check (option string))
    "stale pre-ingest response never served" None (Result_cache.find c "q");
  (* The fresh answer is cached under the new generation... *)
  Result_cache.add c "q" "HITS 2 1:0.5 9:0.4";
  Alcotest.(check (option string))
    "fresh answer served" (Some "HITS 2 1:0.5 9:0.4")
    (Result_cache.find c "q");
  (* ...and invalidated by the next bump in turn. *)
  Result_cache.set_generation c 2;
  Alcotest.(check (option string))
    "every bump invalidates" None (Result_cache.find c "q")

let test_generation_is_monotone () =
  let c = Result_cache.create ~capacity:8 in
  Result_cache.set_generation c 5;
  Result_cache.add c "q" "HITS 0";
  (* Swap notifications can arrive out of order; an older generation
     must not resurrect entries cached under earlier namespaces. *)
  Result_cache.set_generation c 3;
  Alcotest.(check int) "older generation ignored" 5 (Result_cache.generation c);
  Alcotest.(check (option string))
    "entry still served" (Some "HITS 0") (Result_cache.find c "q");
  Result_cache.set_generation c 6;
  Alcotest.(check (option string))
    "newer generation invalidates" None (Result_cache.find c "q")

let test_concurrent_access () =
  (* Hammer one cache from several domains; the test passes when no
     crash/corruption occurs and counters add up. *)
  let c = Result_cache.create ~capacity:32 in
  let per_domain = 2000 in
  let worker seed =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          let key = Printf.sprintf "k%d" ((i + seed) mod 64) in
          match Result_cache.find c key with
          | Some _ -> ()
          | None -> Result_cache.add c key "HITS 0"
        done)
  in
  let domains = List.init 4 worker in
  List.iter Domain.join domains;
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check int) "lookups accounted" (4 * per_domain) (hits + misses);
  Alcotest.(check bool) "bounded" true (len <= 32)

let suite =
  [
    ("result_cache: counters", `Quick, test_hit_miss_counters);
    ("result_cache: eviction", `Quick, test_eviction);
    ("result_cache: clear", `Quick, test_clear_resets);
    ( "result_cache: partial responses refused",
      `Quick,
      test_never_caches_partial_responses );
    ("result_cache: generation invalidates", `Quick, test_generation_invalidates);
    ("result_cache: generation monotone", `Quick, test_generation_is_monotone);
    ("result_cache: concurrent", `Quick, test_concurrent_access);
  ]
