open Pj_server

let test_hit_miss_counters () =
  let c = Result_cache.create ~capacity:4 in
  Alcotest.(check (option string)) "cold" None (Result_cache.find c "k1");
  Result_cache.add c "k1" "HITS 0";
  Alcotest.(check (option string)) "warm" (Some "HITS 0") (Result_cache.find c "k1");
  ignore (Result_cache.find c "k1");
  ignore (Result_cache.find c "k2");
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 2 misses;
  Alcotest.(check int) "len" 1 len

let test_eviction () =
  let c = Result_cache.create ~capacity:2 in
  Result_cache.add c "a" "1";
  Result_cache.add c "b" "2";
  Result_cache.add c "c" "3";
  Alcotest.(check (option string)) "a evicted" None (Result_cache.find c "a");
  Alcotest.(check (option string)) "c kept" (Some "3") (Result_cache.find c "c")

let test_clear_resets () =
  let c = Result_cache.create ~capacity:2 in
  Result_cache.add c "a" "1";
  ignore (Result_cache.find c "a");
  Result_cache.clear c;
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check (list int)) "reset" [ 0; 0; 0 ] [ hits; misses; len ]

let test_concurrent_access () =
  (* Hammer one cache from several domains; the test passes when no
     crash/corruption occurs and counters add up. *)
  let c = Result_cache.create ~capacity:32 in
  let per_domain = 2000 in
  let worker seed =
    Domain.spawn (fun () ->
        for i = 0 to per_domain - 1 do
          let key = Printf.sprintf "k%d" ((i + seed) mod 64) in
          match Result_cache.find c key with
          | Some _ -> ()
          | None -> Result_cache.add c key "v"
        done)
  in
  let domains = List.init 4 worker in
  List.iter Domain.join domains;
  let hits, misses, len = Result_cache.stats c in
  Alcotest.(check int) "lookups accounted" (4 * per_domain) (hits + misses);
  Alcotest.(check bool) "bounded" true (len <= 32)

let suite =
  [
    ("result_cache: counters", `Quick, test_hit_miss_counters);
    ("result_cache: eviction", `Quick, test_eviction);
    ("result_cache: clear", `Quick, test_clear_resets);
    ("result_cache: concurrent", `Quick, test_concurrent_access);
  ]
