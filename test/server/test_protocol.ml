open Pj_server

let check_error msg line =
  match Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "%s: %S parsed" msg line
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error nonempty" msg)
        true
        (String.length e > 0)

let check_search msg line expected =
  match Protocol.parse_request line with
  | Ok (Protocol.Search sr) ->
      let { Protocol.family; alpha; k; terms } = expected in
      Alcotest.(check string) (msg ^ ": family") family sr.Protocol.family;
      Alcotest.(check (float 1e-12)) (msg ^ ": alpha") alpha sr.Protocol.alpha;
      Alcotest.(check int) (msg ^ ": k") k sr.Protocol.k;
      Alcotest.(check (list string)) (msg ^ ": terms") terms sr.Protocol.terms
  | Ok _ -> Alcotest.failf "%s: parsed as a different request" msg
  | Error e -> Alcotest.failf "%s: unexpected error %s" msg e

let test_simple_commands () =
  Alcotest.(check bool) "ping" true (Protocol.parse_request "PING" = Ok Protocol.Ping);
  Alcotest.(check bool) "stats" true (Protocol.parse_request "STATS" = Ok Protocol.Stats);
  Alcotest.(check bool) "quit" true (Protocol.parse_request "QUIT" = Ok Protocol.Quit);
  (* Whitespace and carriage returns are tolerated. *)
  Alcotest.(check bool) "padded ping" true
    (Protocol.parse_request "  PING \r" = Ok Protocol.Ping);
  check_error "ping with args" "PING now";
  check_error "lowercase is not a command" "ping"

let test_search_ok () =
  check_search "basic" "SEARCH win 0.2 5 lenovo nba"
    { Protocol.family = "win"; alpha = 0.2; k = 5; terms = [ "lenovo"; "nba" ] };
  check_search "extra spaces" "SEARCH  med  0.1   3  exact:a|exact:b"
    {
      Protocol.family = "med";
      alpha = 0.1;
      k = 3;
      terms = [ "exact:a|exact:b" ];
    };
  check_search "k zero" "SEARCH max 0 0 x"
    { Protocol.family = "max"; alpha = 0.; k = 0; terms = [ "x" ] }

let test_search_malformed () =
  check_error "empty line" "";
  check_error "blank line" "   \r";
  check_error "unknown command" "FETCH docs";
  check_error "no args" "SEARCH";
  check_error "bad arity" "SEARCH win 0.2";
  check_error "no terms" "SEARCH win 0.2 5";
  check_error "unknown family" "SEARCH tfidf 0.2 5 a";
  check_error "bad alpha" "SEARCH win fast 5 a";
  check_error "negative alpha" "SEARCH win -0.5 5 a";
  check_error "nan alpha" "SEARCH win nan 5 a";
  (* Non-finite alpha poisons the exponential scoring closures (every
     score becomes nan or 0), so it must be rejected at the parser. *)
  check_error "inf alpha" "SEARCH win inf 5 a";
  check_error "spelled-out infinity" "SEARCH med infinity 3 a";
  check_error "signed inf" "SEARCH max +inf 3 a";
  check_error "negative inf" "SEARCH win -inf 5 a";
  check_error "bad k" "SEARCH win 0.2 many a";
  check_error "negative k" "SEARCH win 0.2 -1 a";
  check_error "huge k" "SEARCH win 0.2 1000000 a";
  check_error "too many terms"
    ("SEARCH win 0.2 5 " ^ String.concat " " (List.init 17 string_of_int));
  check_error "oversized line" ("SEARCH win 0.2 5 " ^ String.make 5000 'a')

let test_ingest_verbs () =
  (* ADDDOC takes the rest of the line verbatim: internal spacing is
     document content (token positions feed proximity scoring). *)
  Alcotest.(check bool) "adddoc" true
    (Protocol.parse_request "ADDDOC lenovo nba deal"
    = Ok (Protocol.Add_doc "lenovo nba deal"));
  Alcotest.(check bool) "adddoc preserves internal spacing" true
    (Protocol.parse_request "ADDDOC  a   b\tc "
    = Ok (Protocol.Add_doc "a   b\tc"));
  Alcotest.(check bool) "adddoc tolerates leading blanks and \\r" true
    (Protocol.parse_request "  ADDDOC hello world\r"
    = Ok (Protocol.Add_doc "hello world"));
  check_error "adddoc without text" "ADDDOC";
  check_error "adddoc with only blanks" "ADDDOC   \r";
  Alcotest.(check bool) "deldoc" true
    (Protocol.parse_request "DELDOC 12" = Ok (Protocol.Del_doc 12));
  Alcotest.(check bool) "deldoc zero" true
    (Protocol.parse_request "DELDOC 0" = Ok (Protocol.Del_doc 0));
  check_error "deldoc negative" "DELDOC -3";
  check_error "deldoc non-numeric" "DELDOC twelve";
  check_error "deldoc missing id" "DELDOC";
  check_error "deldoc extra args" "DELDOC 1 2";
  Alcotest.(check bool) "flush" true
    (Protocol.parse_request "FLUSH" = Ok Protocol.Flush);
  Alcotest.(check bool) "padded flush" true
    (Protocol.parse_request " FLUSH \r" = Ok Protocol.Flush);
  check_error "flush with args" "FLUSH now"

let test_ingest_renderers () =
  Alcotest.(check string) "added" "ADDED 7" (Protocol.added 7);
  Alcotest.(check string) "deleted" "DELETED 0" (Protocol.deleted 0);
  Alcotest.(check string) "flushed" "FLUSHED gen=12 segments=3"
    (Protocol.flushed ~generation:12 ~segments:3);
  (* Write acknowledgements are per-request facts, never cacheable. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "is_ingest_success %S" r)
        true (Protocol.is_ingest_success r);
      Alcotest.(check bool)
        (Printf.sprintf "not cacheable %S" r)
        false (Protocol.cacheable r);
      Alcotest.(check bool)
        (Printf.sprintf "not a search success %S" r)
        false
        (Protocol.is_search_success r))
    [ Protocol.added 7; Protocol.deleted 0; Protocol.flushed ~generation:1 ~segments:1 ];
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "not an ingest success %S" r)
        false (Protocol.is_ingest_success r))
    [ "HITS 0"; "PONG"; "ERR no such document 3"; "BUSY"; "TIMEOUT"; "" ]

let test_cache_key_normalization () =
  let key family alpha k terms = Protocol.cache_key { Protocol.family; alpha; k; terms } in
  Alcotest.(check string) "term order ignored"
    (key "win" 0.2 5 [ "a"; "b" ])
    (key "win" 0.2 5 [ "b"; "a" ]);
  Alcotest.(check bool) "k matters" true
    (key "win" 0.2 5 [ "a" ] <> key "win" 0.2 6 [ "a" ]);
  Alcotest.(check bool) "alpha matters" true
    (key "win" 0.2 5 [ "a" ] <> key "win" 0.3 5 [ "a" ]);
  Alcotest.(check bool) "family matters" true
    (key "win" 0.2 5 [ "a" ] <> key "med" 0.2 5 [ "a" ])

let test_scoring_of () =
  (match Protocol.scoring_of ~family:"win" ~alpha:0.1 with
  | Ok (Pj_core.Scoring.Win _) -> ()
  | _ -> Alcotest.fail "win family");
  (match Protocol.scoring_of ~family:"quux" ~alpha:0.1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown family accepted")

let test_renderers () =
  Alcotest.(check string) "no hits" "HITS 0" (Protocol.string_of_hits []);
  Alcotest.(check string) "err is one line" "ERR a b"
    (Protocol.err "a\nb");
  Alcotest.(check string) "degraded wraps the hits line"
    "OK-DEGRADED shards=1,3 HITS 0"
    (Protocol.ok_degraded ~failed_shards:[ 1; 3 ] [])

let test_response_classes () =
  let cases =
    (* (response, cacheable, search success) *)
    [
      ("HITS 0", true, true);
      ("HITS 2 1:0.5 2:0.25", true, true);
      ("OK-DEGRADED shards=0 HITS 1 7:0.5", false, true);
      ("TIMEOUT", false, false);
      ("BUSY", false, false);
      ("ERR boom", false, false);
      ("PONG", false, false);
      ("HITS", false, false);
      (* truncated, not a well-formed response *)
      ("", false, false);
    ]
  in
  List.iter
    (fun (r, want_cache, want_success) ->
      Alcotest.(check bool)
        (Printf.sprintf "cacheable %S" r)
        want_cache (Protocol.cacheable r);
      Alcotest.(check bool)
        (Printf.sprintf "is_search_success %S" r)
        want_success
        (Protocol.is_search_success r))
    cases

let test_stats_request_accounting () =
  (* Regression for the STATS double-count: a failed SEARCH used to be
     added to both [searches] and [errors], and [requests] summed the
     two — so one request line counted twice. Replay a mixed workload
     and hold the invariant the snapshot documents. *)
  let m = Metrics.create () in
  (* 3 searches: one served, one failing at evaluation, one timing out. *)
  Metrics.record_search m;
  Metrics.observe_latency m 0.001;
  Metrics.record_search m;
  Metrics.record_search_error m;
  Metrics.record_search m;
  Metrics.record_timeout m;
  (* ... and one answered degraded: 2 of its shard legs failed. Its
     latency goes to the separate degraded histogram, so it must not
     bump [served]. *)
  Metrics.record_search m;
  Metrics.record_degraded m ~n_failed_shards:2;
  Metrics.observe_degraded_latency m 0.5;
  (* 2 request lines that never parsed into a command. *)
  Metrics.record_parse_error m;
  Metrics.record_parse_error m;
  (* And some chatter. *)
  Metrics.record_ping m;
  Metrics.record_stats m;
  (* 3 writes: a served ADDDOC, a DELDOC failing at evaluation, and a
     FLUSH. The failing DELDOC is already counted in [deletes], so its
     ingest error must not add a request. *)
  Metrics.record_add m;
  Metrics.observe_ingest_latency m 0.002;
  Metrics.record_delete m;
  Metrics.record_ingest_error m;
  Metrics.record_flush m;
  Metrics.observe_ingest_latency m 0.010;
  let s = Metrics.snapshot m in
  Alcotest.(check int)
    "requests = searches + pings + stats + parse errors + adds + deletes + \
     flushes"
    (s.Metrics.searches + s.Metrics.pings + s.Metrics.stats_calls
   + s.Metrics.parse_errors + s.Metrics.adds + s.Metrics.deletes
   + s.Metrics.flushes)
    s.Metrics.requests;
  Alcotest.(check int) "exactly the 11 request lines" 11 s.Metrics.requests;
  Alcotest.(check int) "searches" 4 s.Metrics.searches;
  Alcotest.(check int) "parse errors" 2 s.Metrics.parse_errors;
  Alcotest.(check int) "search errors" 1 s.Metrics.search_errors;
  Alcotest.(check int) "adds" 1 s.Metrics.adds;
  Alcotest.(check int) "deletes" 1 s.Metrics.deletes;
  Alcotest.(check int) "flushes" 1 s.Metrics.flushes;
  Alcotest.(check int) "ingest errors" 1 s.Metrics.ingest_errors;
  Alcotest.(check int) "errors = parse + search + ingest errors"
    (s.Metrics.parse_errors + s.Metrics.search_errors + s.Metrics.ingest_errors)
    s.Metrics.errors;
  Alcotest.(check int) "served only counts HITS responses" 1 s.Metrics.served;
  Alcotest.(check int) "degraded responses" 1 s.Metrics.degraded;
  Alcotest.(check int) "failed shard legs" 2 s.Metrics.shard_failures

(* Satellite regression: ERR payloads come from arbitrary exception
   messages — a reason containing a newline used to be flattened, but
   other control bytes (tabs, NUL, escapes) sailed straight into the
   one-line framing. Every run of whitespace/control bytes must
   collapse to a single space. *)
let test_err_sanitized () =
  Alcotest.(check string) "plain reason untouched" "ERR no such document 5"
    (Protocol.err "no such document 5");
  Alcotest.(check string) "newline cannot inject a phantom line"
    "ERR boom injected line"
    (Protocol.err "boom\ninjected line");
  Alcotest.(check string) "CRLF and tab runs collapse" "ERR a b c"
    (Protocol.err "a\t\tb\r\nc");
  Alcotest.(check string) "NUL and DEL collapse" "ERR x y"
    (Protocol.err "x\x00\x7fy");
  (* The ESC byte itself is neutralized; the printable remainder of an
     ANSI sequence is harmless text. *)
  Alcotest.(check string) "escape byte neutralized" "ERR red [31m text"
    (Protocol.err "red\x1b[31m text");
  Alcotest.(check string) "leading/trailing runs trimmed" "ERR inner words"
    (Protocol.err "  \ninner words\r\n");
  let sanitized = Protocol.err "a\nmulti\nline\nexception\n" in
  Alcotest.(check bool) "never more than one line" false
    (String.contains sanitized '\n' || String.contains sanitized '\r')

let suite =
  [
    ("protocol: err payloads sanitized to one line", `Quick, test_err_sanitized);
    ("protocol: simple commands", `Quick, test_simple_commands);
    ("protocol: search ok", `Quick, test_search_ok);
    ("protocol: malformed", `Quick, test_search_malformed);
    ("protocol: ingest verbs", `Quick, test_ingest_verbs);
    ("protocol: ingest renderers", `Quick, test_ingest_renderers);
    ("protocol: cache key", `Quick, test_cache_key_normalization);
    ("protocol: scoring_of", `Quick, test_scoring_of);
    ("protocol: renderers", `Quick, test_renderers);
    ("protocol: response classes", `Quick, test_response_classes);
    ("protocol: stats request accounting", `Quick, test_stats_request_accounting);
  ]
