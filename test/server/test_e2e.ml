open Pj_server

(* A small but non-trivial corpus, indexed over Porter stems exactly the
   way `proxjoin serve` builds it. *)
let texts =
  [
    "lenovo signs a partnership with the nba this season";
    "the nba expanded its partnership program with dell";
    "unrelated document about gardening and weather";
    "lenovo mentioned briefly and much later a partnership of others";
    "dell and lenovo compete for the nba partnership deal";
    "nba nba nba partnership partnership lenovo at the end";
    "a partnership between gardeners and the weather service";
    "lenovo dell nba partnership all adjacent here";
  ]

let build () =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text ->
      let stems =
        Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)
      in
      ignore (Pj_index.Corpus.add_tokens corpus stems))
    texts;
  let index = Pj_index.Inverted_index.build corpus in
  (corpus, Pj_engine.Searcher.create index, Pj_ontology.Mini_wordnet.create ())

(* What the server must answer for a SEARCH line: the same parse +
   stem + search pipeline, rendered by the same formatter. *)
let expected_response searcher graph ~family ~alpha ~k terms =
  match Pj_matching.Query_parser.parse graph terms with
  | Error msg -> Protocol.err msg
  | Ok query ->
      let query =
        {
          query with
          Pj_matching.Query.matchers =
            Array.map Pj_matching.Matcher.stem_expansions
              query.Pj_matching.Query.matchers;
        }
      in
      let scoring =
        match Protocol.scoring_of ~family ~alpha with
        | Ok s -> s
        | Error msg -> failwith msg
      in
      Protocol.string_of_hits (Pj_engine.Searcher.search ~k searcher scoring query)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request conn line =
  output_string conn.oc line;
  output_char conn.oc '\n';
  flush conn.oc;
  input_line conn.ic

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* [shards > 1] serves the same corpus through the scatter-gather
   [Shard_searcher]; every test's expectations stay valid because the
   sharded results are identical to the monolithic ones. *)
let with_server ?config ?(shards = 1) f =
  let corpus, searcher, graph = build () in
  let search =
    if shards <= 1 then Worker_pool.of_searcher searcher
    else
      Worker_pool.of_shard_searcher
        (Pj_engine.Shard_searcher.create
           (Pj_index.Sharded_index.build ~shards corpus))
  in
  let server = Server.start ?config ~graph search in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server searcher graph)

let queries =
  [
    ("win", 0.2, 5, [ "exact:lenovo"; "exact:nba"; "exact:partnership" ]);
    ("med", 0.1, 3, [ "exact:lenovo"; "exact:partnership" ]);
    ("max", 0.1, 10, [ "exact:dell"; "exact:nba" ]);
    ("win", 0.5, 2, [ "exact:partnership"; "exact:weather" ]);
    ("win", 0.2, 5, [ "stem:gardening" ]);
    ("med", 0.3, 4, [ "exact:nba"; "exact:partnership" ]);
  ]

let search_line (family, alpha, k, terms) =
  Printf.sprintf "SEARCH %s %g %d %s" family alpha k (String.concat " " terms)

let test_concurrent_clients_match_direct () =
  with_server (fun server searcher graph ->
      let port = Server.port server in
      let expected =
        List.map
          (fun (family, alpha, k, terms) ->
            expected_response searcher graph ~family ~alpha ~k terms)
          queries
      in
      let n_clients = 8 and rounds = 3 in
      let failures = ref [] in
      let failures_mutex = Mutex.create () in
      let client id =
        let conn = connect port in
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () ->
            for round = 1 to rounds do
              (* Stagger the query order per client so the cache sees
                 both cold and warm lookups concurrently. *)
              let rotated =
                let n = List.length queries in
                List.init n (fun i ->
                    let j = (i + id + round) mod n in
                    (List.nth queries j, List.nth expected j))
              in
              List.iter
                (fun (q, want) ->
                  let got = request conn (search_line q) in
                  if got <> want then begin
                    Mutex.lock failures_mutex;
                    failures :=
                      Printf.sprintf "client %d: %s -> %s (want %s)" id
                        (search_line q) got want
                      :: !failures;
                    Mutex.unlock failures_mutex
                  end)
                rotated;
              Alcotest.(check string) "interleaved ping" "PONG"
                (request conn "PING")
            done;
            Alcotest.(check string) "quit" "BYE" (request conn "QUIT"))
      in
      let threads = List.init n_clients (fun id -> Thread.create client id) in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%d mismatches, e.g. %s" (List.length !failures) f);
      (* Each distinct query misses at least once; concurrent clients may
         race between find and add, so a key can miss more than once — but
         every lookup is accounted for, and the cache ends up holding
         exactly the distinct keys. *)
      let hits, misses, len = Result_cache.stats (Server.cache server) in
      Alcotest.(check bool) "each distinct query missed at least once" true
        (misses >= List.length queries);
      Alcotest.(check int) "every lookup is a hit or a miss"
        (n_clients * rounds * List.length queries)
        (hits + misses);
      Alcotest.(check int) "cache holds exactly the distinct keys"
        (List.length queries) len)

let test_repeated_query_served_from_cache () =
  with_server (fun server _ _ ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let line = search_line (List.hd queries) in
          let first = request conn line in
          let hits0, misses0, _ = Result_cache.stats (Server.cache server) in
          let second = request conn line in
          let hits1, misses1, _ = Result_cache.stats (Server.cache server) in
          Alcotest.(check string) "result unchanged" first second;
          Alcotest.(check int) "hit counter incremented" (hits0 + 1) hits1;
          Alcotest.(check int) "no extra miss" misses0 misses1;
          Alcotest.(check bool) "it is a real result" true
            (String.length first >= 6 && String.sub first 0 5 = "HITS ")))

let test_deadline_timeout () =
  (* A deadline already in the past forces every live search to expire
     before solving; the response must be TIMEOUT, not a hang or a
     dead worker. *)
  let config = { Server.default_config with deadline_s = -1. } in
  with_server ~config (fun server _ _ ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          Alcotest.(check string) "times out" "TIMEOUT"
            (request conn (search_line (List.hd queries)));
          (* The worker survives and keeps serving. *)
          Alcotest.(check string) "still alive" "PONG" (request conn "PING");
          Alcotest.(check string) "times out again" "TIMEOUT"
            (request conn (search_line (List.nth queries 1)))))

let test_malformed_requests_keep_connection () =
  with_server (fun server searcher graph ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let is_err line =
            String.length line >= 4 && String.sub line 0 4 = "ERR "
          in
          Alcotest.(check bool) "garbage" true (is_err (request conn "GARBAGE IN"));
          Alcotest.(check bool) "bad arity" true (is_err (request conn "SEARCH win"));
          Alcotest.(check bool) "bad family" true
            (is_err (request conn "SEARCH bm25 0.2 5 lenovo"));
          Alcotest.(check bool) "bad alpha" true
            (is_err (request conn "SEARCH win slow 5 lenovo"));
          Alcotest.(check bool) "empty line" true (is_err (request conn ""));
          (* A term the parser rejects (empty disjunct). *)
          Alcotest.(check bool) "bad term" true
            (is_err (request conn "SEARCH win 0.2 5 exact:"));
          (* After all that abuse the connection still serves real
             queries. *)
          let family, alpha, k, terms = List.hd queries in
          Alcotest.(check string) "recovers"
            (expected_response searcher graph ~family ~alpha ~k terms)
            (request conn (search_line (List.hd queries)));
          Alcotest.(check string) "and pings" "PONG" (request conn "PING")))

let test_stats_reports () =
  with_server (fun server _ _ ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          ignore (request conn (search_line (List.hd queries)));
          ignore (request conn (search_line (List.hd queries)));
          ignore (request conn "PING");
          let stats = request conn "STATS" in
          let has sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length stats
              && (String.sub stats i n = sub || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "is a stats line" true (has "STATS uptime_s=");
          Alcotest.(check bool) "searches counted" true (has "searches=2");
          Alcotest.(check bool) "cache hit counted" true (has "cache_hits=1");
          Alcotest.(check bool) "pings counted" true (has "pings=1");
          Alcotest.(check bool) "latency percentiles" true (has "p99_ms=")))

let test_sharded_server_matches_direct () =
  (* The full query list over a 2-shard server must produce byte-for-
     byte the responses the monolithic searcher computes directly. *)
  with_server ~shards:2 (fun server searcher graph ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          List.iter
            (fun ((family, alpha, k, terms) as q) ->
              Alcotest.(check string)
                (Printf.sprintf "sharded response for %s" (search_line q))
                (expected_response searcher graph ~family ~alpha ~k terms)
                (request conn (search_line q)))
            queries;
          Alcotest.(check string) "quit" "BYE" (request conn "QUIT")))

let test_overlong_line_fails_connection () =
  (* A line past Protocol.max_line_bytes must cost the server O(cap)
     memory, draw exactly one ERR, and close the connection — while
     other (and future) connections keep working. *)
  with_server (fun server _ _ ->
      let conn = connect (Server.port server) in
      let closed =
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () ->
            output_string conn.oc (String.make (4 * Protocol.max_line_bytes) 'a');
            output_char conn.oc '\n';
            flush conn.oc;
            Alcotest.(check string) "one diagnostic"
              "ERR request line too long" (input_line conn.ic);
            (* Then the server hangs up: no second response ever comes. *)
            match input_line conn.ic with
            | exception (End_of_file | Sys_error _) -> true
            | _ -> false)
      in
      Alcotest.(check bool) "connection closed after ERR" true closed;
      (* The abuse was per-connection: a fresh client is served. *)
      let conn2 = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn2)
        (fun () ->
          Alcotest.(check string) "server still alive" "PONG"
            (request conn2 "PING")))

let test_connection_table_drains () =
  (* Regression for the handler-thread leak: the server used to append
     every connection's thread to a list joined only at [stop], so the
     list — and each thread's stack — grew with connection *turnover*.
     Now the conns table is the only record, and handlers remove
     themselves: after clients hang up it must drain back to zero. *)
  with_server (fun server _ _ ->
      let wave () =
        let conns = List.init 5 (fun _ -> connect (Server.port server)) in
        List.iter
          (fun c -> Alcotest.(check string) "ping" "PONG" (request c "PING"))
          conns;
        Alcotest.(check bool) "open connections are tracked" true
          (Server.connections server >= 5);
        List.iter
          (fun c -> Alcotest.(check string) "bye" "BYE" (request c "QUIT"))
          conns;
        List.iter close conns;
        (* Handlers unregister asynchronously after BYE; give them a
           bounded moment. *)
        let deadline = Unix.gettimeofday () +. 5. in
        while Server.connections server > 0 && Unix.gettimeofday () < deadline do
          Thread.yield ();
          Thread.delay 0.01
        done;
        Alcotest.(check int) "table drains to zero" 0
          (Server.connections server)
      in
      (* Two waves: turnover must not accumulate anything. *)
      wave ();
      wave ())

(* ---- live ingestion over the socket --------------------------------- *)

let contains line sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
  in
  go 0

(* Extract the integer of [" name=<int>"] from a STATS/FLUSHED line. The
   leading space keeps ["docs"] from matching inside ["segment_docs"]. *)
let int_field line name =
  let pat = " " ^ name ^ "=" in
  let n = String.length pat and len = String.length line in
  let rec find i =
    if i + n > len then Alcotest.failf "field %s missing in %S" name line
    else if String.sub line i n = pat then i + n
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while !stop < len && line.[!stop] <> ' ' do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

let stems text =
  Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)

(* Same corpus as [build ()], but held by a writable live index that the
   server mutates through ADDDOC/DELDOC/FLUSH. *)
let with_live_server f =
  let config =
    {
      Pj_live.Live_index.default_config with
      memtable_capacity = 4;
      merge_threshold = 2;
      background_merge = false;
    }
  in
  let live = Pj_live.Live_index.create ~config () in
  List.iter (fun text -> ignore (Pj_live.Live_index.add live (stems text))) texts;
  let graph = Pj_ontology.Mini_wordnet.create () in
  let server = Server.start ~live ~graph (Worker_pool.of_live live) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Pj_live.Live_index.close live)
    (fun () -> f server live)

let test_live_ingest_over_socket () =
  with_live_server (fun server _live ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let q = search_line (List.hd queries) in
          let before = request conn q in
          Alcotest.(check bool) "seed docs answer" true
            (String.length before >= 6 && String.sub before 0 5 = "HITS ");
          (* Warm the cache, then ingest a document that dominates the
             query: the cached pre-ingest response must become
             unreachable the moment the generation bumps. *)
          Alcotest.(check string) "cached" before (request conn q);
          let added =
            request conn "ADDDOC lenovo nba partnership lenovo nba partnership"
          in
          let id =
            match String.split_on_char ' ' added with
            | [ "ADDED"; id ] -> int_of_string id
            | _ -> Alcotest.failf "unexpected ADDDOC reply %S" added
          in
          Alcotest.(check int) "ids stay dense" (List.length texts) id;
          let after = request conn q in
          Alcotest.(check bool) "stale pre-ingest response never served" true
            (after <> before);
          Alcotest.(check bool) "new document is ranked" true
            (contains after (Printf.sprintf " %d:" id));
          (* Deleting it restores the pre-ingest answer byte-for-byte:
             tombstoned = never indexed. *)
          Alcotest.(check string) "deleted"
            (Printf.sprintf "DELETED %d" id)
            (request conn (Printf.sprintf "DELDOC %d" id));
          Alcotest.(check string) "delete visible immediately" before
            (request conn q);
          Alcotest.(check bool) "double delete refused" true
            (contains (request conn (Printf.sprintf "DELDOC %d" id)) "ERR ");
          (* FLUSH reports the new durable generation and segment count. *)
          let flushed = request conn "FLUSH" in
          Alcotest.(check bool) "flushed" true
            (String.length flushed >= 12
            && String.sub flushed 0 12 = "FLUSHED gen=");
          Alcotest.(check bool) "segment count reported" true
            (int_field flushed "segments" >= 1)))

let test_live_stats_accounting () =
  with_live_server (fun server _live ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          ignore (request conn (search_line (List.hd queries)));
          ignore (request conn "ADDDOC gardening weather service");
          ignore (request conn (Printf.sprintf "DELDOC %d" (List.length texts)));
          ignore (request conn "DELDOC 999999");
          (* fails: ingest error *)
          ignore (request conn "FLUSH");
          let stats = request conn "STATS" in
          Alcotest.(check bool) "live marker" true (contains stats " live=1 ");
          (* The live accounting invariant, read off the socket. *)
          Alcotest.(check int) "docs = segment + memtable - tombstones"
            (int_field stats "docs")
            (int_field stats "segment_docs"
            + int_field stats "memtable_docs"
            - int_field stats "tombstones");
          Alcotest.(check int) "adds counted" 1 (int_field stats "adds");
          (* Both DELDOCs are requests — the failed one additionally
             shows up as an ingest error. *)
          Alcotest.(check int) "deletes counted" 2 (int_field stats "deletes");
          Alcotest.(check int) "flushes counted" 1 (int_field stats "flushes");
          Alcotest.(check int) "failed delete is an ingest error" 1
            (int_field stats "ingest_errors");
          (* requests = searches + pings + stats + parse_errors
                      + adds + deletes + flushes *)
          Alcotest.(check int) "request accounting closes"
            (int_field stats "requests")
            (int_field stats "searches"
            + int_field stats "pings"
            + int_field stats "stats"
            + int_field stats "parse_errors"
            + int_field stats "adds"
            + int_field stats "deletes"
            + int_field stats "flushes")))

(* Many connections appending at once: the batcher must hand every
   client its own dense id exactly once, account every add, and group
   the burst into fewer commits than requests (while never losing
   one). *)
let test_concurrent_adddoc_batched () =
  with_live_server (fun server live ->
      let port = Server.port server in
      let n_clients = 6 and per_client = 5 in
      let base = List.length texts in
      let ids = ref [] in
      let ids_mutex = Mutex.create () in
      let client c =
        let conn = connect port in
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () ->
            for i = 1 to per_client do
              let line =
                request conn
                  (Printf.sprintf "ADDDOC lenovo nba partnership c%d i%d" c i)
              in
              match String.split_on_char ' ' line with
              | [ "ADDED"; id ] ->
                  Mutex.lock ids_mutex;
                  ids := int_of_string id :: !ids;
                  Mutex.unlock ids_mutex
              | _ -> Alcotest.failf "unexpected ADDDOC reply %S" line
            done)
      in
      let threads = List.init n_clients (fun c -> Thread.create client c) in
      List.iter Thread.join threads;
      let total = n_clients * per_client in
      let got = List.sort compare !ids in
      Alcotest.(check (list int)) "every client got its own dense id"
        (List.init total (fun i -> base + i))
        got;
      Alcotest.(check int) "live index holds them all" (base + total)
        (Pj_live.Live_index.stats live).Pj_live.Live_index.total_docs;
      let conn = connect port in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let stats = request conn "STATS" in
          Alcotest.(check int) "adds counted" total (int_field stats "adds");
          let batches = int_field stats "ingest_batches" in
          Alcotest.(check bool) "acks were group-committed" true
            (batches >= 1 && batches <= total);
          Alcotest.(check int) "every add rode a batch" total
            (int_field stats "batched_adds");
          (* And the writes are searchable. *)
          let answer = request conn (search_line (List.hd queries)) in
          Alcotest.(check bool) "post-burst search answers" true
            (String.length answer >= 6 && String.sub answer 0 5 = "HITS ")))

(* Satellite: the batcher's leader-crash path. A [worker.job] panic
   kills the worker domain executing the leader's [add_batch]; the
   pool answers the task [Error], the batcher fans ERR out to every
   waiter — nobody hangs on a dead leader — and once the supervisor
   respawns the worker the server keeps serving. *)
let test_batched_ingest_leader_crash () =
  with_live_server (fun server _live ->
      let port = Server.port server in
      let n_clients = 6 in
      let replies = Array.make n_clients "" in
      Pj_util.Failpoint.arm "worker.job" Pj_util.Failpoint.Panic;
      Fun.protect
        ~finally:(fun () -> Pj_util.Failpoint.clear ())
        (fun () ->
          let client c =
            let conn = connect port in
            Fun.protect
              ~finally:(fun () -> close conn)
              (fun () ->
                replies.(c) <-
                  request conn (Printf.sprintf "ADDDOC doomed batch c%d" c))
          in
          let threads = List.init n_clients (fun c -> Thread.create client c) in
          List.iter Thread.join threads);
      (* Every waiter got an answer — ERR, not a hang — and it is one
         clean line (the panic's exception message went through the
         sanitizer). *)
      Array.iteri
        (fun c line ->
          Alcotest.(check bool)
            (Printf.sprintf "client %d answered ERR, not a hang (got %S)" c
               line)
            true
            (String.length line >= 4 && String.sub line 0 4 = "ERR ");
          Alcotest.(check bool)
            (Printf.sprintf "client %d got a single clean line" c)
            false
            (String.exists (fun ch -> ch < ' ' || ch = '\x7f') line))
        replies;
      (* The pool respawned: ingest and search still work. *)
      let conn = connect port in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let rec retry n =
            let line = request conn "ADDDOC alive again after the crash" in
            if String.length line >= 6 && String.sub line 0 6 = "ADDED " then
              line
            else if n = 0 then
              Alcotest.failf "server never recovered: %S" line
            else begin
              Thread.delay 0.02;
              retry (n - 1)
            end
          in
          ignore (retry 100);
          let answer = request conn (search_line (List.hd queries)) in
          Alcotest.(check bool) "post-crash search answers" true
            (String.length answer >= 6 && String.sub answer 0 5 = "HITS ")))

(* The [try execute] guard itself: an exception raised inside the
   leader's execution path (here: the post-commit [on_batch] hook, via
   a printer that emits control characters) must fan out as one
   sanitized ERR line per waiter, never escape into the leader's
   connection thread, and never leave the batcher wedged. *)
exception Hook_boom

let () =
  Printexc.register_printer (function
    | Hook_boom -> Some "hook exploded\nwith a second line\tand a tab"
    | _ -> None)

let test_batcher_execute_guard () =
  let config =
    {
      Pj_live.Live_index.default_config with
      memtable_capacity = 64;
      background_merge = false;
    }
  in
  let live = Pj_live.Live_index.create ~config () in
  let pool =
    Worker_pool.create ~domains:2 ~queue_capacity:16
      (Worker_pool.of_live live)
  in
  Fun.protect
    ~finally:(fun () ->
      Worker_pool.shutdown pool;
      Pj_live.Live_index.close live)
    (fun () ->
      let batcher =
        Ingest_batcher.create
          ~on_batch:(fun ~size:_ -> raise Hook_boom)
          pool live
      in
      let n = 4 in
      let replies = Array.make n "" in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                replies.(i) <-
                  Ingest_batcher.submit batcher [| "doc"; string_of_int i |])
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i line ->
          Alcotest.(check bool)
            (Printf.sprintf "waiter %d got ERR (got %S)" i line)
            true
            (String.length line >= 4 && String.sub line 0 4 = "ERR ");
          Alcotest.(check bool)
            (Printf.sprintf "waiter %d's ERR is one sanitized line" i)
            false
            (String.exists (fun ch -> ch < ' ' || ch = '\x7f') line))
        replies;
      (* Not wedged: a batcher whose hook behaves again acks normally. *)
      let calm =
        Ingest_batcher.create ~on_batch:(fun ~size:_ -> ()) pool live
      in
      let line = Ingest_batcher.submit calm [| "calm"; "doc" |] in
      Alcotest.(check bool) "subsequent submit acks" true
        (String.length line >= 6 && String.sub line 0 6 = "ADDED "))

let test_ingest_refused_without_live () =
  (* A read-only server (no --live) answers every ingest verb with ERR
     and keeps serving searches. *)
  with_server (fun server _ _ ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let is_err line =
            String.length line >= 4 && String.sub line 0 4 = "ERR "
          in
          Alcotest.(check bool) "ADDDOC refused" true
            (is_err (request conn "ADDDOC some text"));
          Alcotest.(check bool) "DELDOC refused" true
            (is_err (request conn "DELDOC 0"));
          Alcotest.(check bool) "FLUSH refused" true
            (is_err (request conn "FLUSH"));
          Alcotest.(check string) "still serving" "PONG" (request conn "PING")))

let suite =
  [
    ("e2e: concurrent clients = direct search", `Quick, test_concurrent_clients_match_direct);
    ("e2e: repeated query hits cache", `Quick, test_repeated_query_served_from_cache);
    ("e2e: deadline timeout", `Quick, test_deadline_timeout);
    ("e2e: malformed requests", `Quick, test_malformed_requests_keep_connection);
    ("e2e: stats", `Quick, test_stats_reports);
    ("e2e: sharded server = direct search", `Quick, test_sharded_server_matches_direct);
    ("e2e: over-long line fails connection", `Quick, test_overlong_line_fails_connection);
    ("e2e: connection table drains", `Quick, test_connection_table_drains);
    ("e2e: live ingest over socket", `Quick, test_live_ingest_over_socket);
    ("e2e: live stats accounting", `Quick, test_live_stats_accounting);
    ("e2e: concurrent ADDDOC group commit", `Quick, test_concurrent_adddoc_batched);
    ("e2e: batched ingest leader crash", `Quick, test_batched_ingest_leader_crash);
    ("e2e: batcher execute guard", `Quick, test_batcher_execute_guard);
    ("e2e: ingest refused without --live", `Quick, test_ingest_refused_without_live);
  ]
