open Pj_server

(* Supervision tests drive the pool through a stub search function, so
   a "panic" is raised exactly when the test says so — no global
   failpoint state, no index needed. *)

let query =
  match
    Pj_matching.Query_parser.parse
      (Pj_ontology.Mini_wordnet.create ())
      [ "exact:lenovo" ]
  with
  | Ok q -> q
  | Error msg -> failwith msg

let scoring =
  match Protocol.scoring_of ~family:"win" ~alpha:0.1 with
  | Ok s -> s
  | Error msg -> failwith msg

let far_deadline () = Pj_util.Timing.monotonic_now () +. 60.

let run pool = Worker_pool.run pool ~scoring ~k:5 ~deadline:(far_deadline ()) query

let wait_until ?(timeout = 5.) pred =
  let deadline = Pj_util.Timing.monotonic_now () +. timeout in
  let rec go () =
    if pred () then true
    else if Pj_util.Timing.monotonic_now () > deadline then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let test_panic_respawns_worker () =
  let panicking = Atomic.make false in
  let search ~scoring:_ ~k:_ ~deadline:_ _query =
    if Atomic.get panicking then raise (Pj_util.Failpoint.Panicked "test.stub")
    else Ok ([], [])
  in
  let pool = Worker_pool.create ~domains:2 ~queue_capacity:8 search in
  Fun.protect
    ~finally:(fun () -> Worker_pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "full strength" 2 (Worker_pool.live pool);
      Atomic.set panicking true;
      (* The submitter must get an answer, not hang on the dead domain. *)
      (match run pool with
      | `Done (Worker_pool.Failed msg) ->
          Alcotest.(check bool) "failure names the panic" true
            (String.length msg >= 6 && String.sub msg 0 6 = "worker")
      | `Done _ | `Busy -> Alcotest.fail "expected a Failed outcome");
      Atomic.set panicking false;
      (* One respawn cycle restores full strength... *)
      Alcotest.(check bool) "respawned within one cycle" true
        (wait_until (fun () ->
             Worker_pool.respawns pool = 1 && Worker_pool.live pool = 2));
      Alcotest.(check int) "one panic counted" 1 (Worker_pool.panics pool);
      (* ... and the pool serves normally again. *)
      for _ = 1 to 8 do
        match run pool with
        | `Done (Worker_pool.Hits []) -> ()
        | `Done _ | `Busy -> Alcotest.fail "expected Hits [] after respawn"
      done)

let test_repeated_panics_keep_pool_alive () =
  let panicking = Atomic.make true in
  let search ~scoring:_ ~k:_ ~deadline:_ _query =
    if Atomic.get panicking then raise (Pj_util.Failpoint.Panicked "test.stub")
    else Ok ([], [])
  in
  let pool = Worker_pool.create ~domains:2 ~queue_capacity:8 search in
  Fun.protect
    ~finally:(fun () -> Worker_pool.shutdown pool)
    (fun () ->
      let kills = 6 in
      for i = 1 to kills do
        match run pool with
        | `Done (Worker_pool.Failed _) -> ()
        | `Done _ | `Busy -> Alcotest.failf "kill %d: expected Failed" i
      done;
      Atomic.set panicking false;
      Alcotest.(check bool) "all kills respawned" true
        (wait_until (fun () ->
             Worker_pool.respawns pool = kills && Worker_pool.live pool = 2));
      Alcotest.(check int) "every panic counted" kills (Worker_pool.panics pool);
      match run pool with
      | `Done (Worker_pool.Hits []) -> ()
      | `Done _ | `Busy -> Alcotest.fail "pool dead after repeated panics")

let test_shutdown_respawns_for_queued_jobs () =
  (* The nastiest corner: a single-domain pool whose only worker
     panics while another job is already queued, with [shutdown]
     racing both. The queued job's submitter is blocked on its result
     cell; the supervisor must respawn (even though we are stopping)
     so that job is answered — then retire the pool. *)
  let gate = Atomic.make false in
  let first = Atomic.make true in
  let search ~scoring:_ ~k:_ ~deadline:_ _query =
    if Atomic.compare_and_set first true false then begin
      (* First job: hold the worker until both the second job is
         queued and shutdown has begun, then crash. *)
      while not (Atomic.get gate) do
        Thread.yield ()
      done;
      Thread.delay 0.02;
      raise (Pj_util.Failpoint.Panicked "test.stub")
    end
    else Ok ([], [])
  in
  let pool = Worker_pool.create ~domains:1 ~queue_capacity:8 search in
  let outcome1 = ref `Busy and outcome2 = ref `Busy in
  let t1 = Thread.create (fun () -> outcome1 := run pool) () in
  let t2 =
    Thread.create
      (fun () ->
        (* Queue behind the held job. *)
        Thread.delay 0.05;
        outcome2 := run pool)
      ()
  in
  Thread.delay 0.15;
  Atomic.set gate true;
  Worker_pool.shutdown pool;
  Thread.join t1;
  Thread.join t2;
  (match !outcome1 with
  | `Done (Worker_pool.Failed _) -> ()
  | `Done _ | `Busy -> Alcotest.fail "held job should report the panic");
  (match !outcome2 with
  | `Done (Worker_pool.Hits []) -> ()
  | `Done _ | `Busy ->
      Alcotest.fail "queued job must be served by the shutdown respawn");
  Alcotest.(check int) "one panic" 1 (Worker_pool.panics pool);
  Alcotest.(check int) "one respawn" 1 (Worker_pool.respawns pool);
  Alcotest.(check int) "pool fully retired" 0 (Worker_pool.live pool)

let test_degraded_outcome_surfaced () =
  let search ~scoring:_ ~k:_ ~deadline:_ _query = Ok ([], [ 1; 3 ]) in
  let pool = Worker_pool.create ~domains:1 ~queue_capacity:4 search in
  Fun.protect
    ~finally:(fun () -> Worker_pool.shutdown pool)
    (fun () ->
      match run pool with
      | `Done (Worker_pool.Degraded ([], [ 1; 3 ])) -> ()
      | `Done _ | `Busy -> Alcotest.fail "expected Degraded ([], [1; 3])")

let suite =
  [
    ("worker_pool: panic respawns", `Quick, test_panic_respawns_worker);
    ( "worker_pool: repeated panics survived",
      `Quick,
      test_repeated_panics_keep_pool_alive );
    ( "worker_pool: shutdown respawns for queued jobs",
      `Quick,
      test_shutdown_respawns_for_queued_jobs );
    ("worker_pool: degraded surfaced", `Quick, test_degraded_outcome_surfaced);
  ]
