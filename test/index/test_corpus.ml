(* Corpus views and slices: [sub] shares the vocabulary and keeps
   global ids but must refuse writes; [docs_slice] hands out stable
   document arrays; [build_docs] over a slice equals [build] over the
   same documents. *)

let filled () =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text -> ignore (Pj_index.Corpus.add_text corpus text))
    [ "aa bb cc"; "bb cc dd"; "cc dd ee"; "dd ee aa" ];
  corpus

let test_sub_rejects_writes () =
  let corpus = filled () in
  let view = Pj_index.Corpus.sub corpus ~pos:1 ~len:2 in
  Alcotest.check_raises "add_text on a view"
    (Invalid_argument
       "Corpus.add_text: cannot add documents to a read-only corpus view")
    (fun () -> ignore (Pj_index.Corpus.add_text view "xx yy"));
  Alcotest.check_raises "add_tokens on a view"
    (Invalid_argument
       "Corpus.add_tokens: cannot add documents to a read-only corpus view")
    (fun () -> ignore (Pj_index.Corpus.add_tokens view [| "xx"; "yy" |]));
  (* The parent is unaffected and still writable. *)
  Alcotest.(check int) "view untouched" 2 (Pj_index.Corpus.size view);
  let d = Pj_index.Corpus.add_text corpus "xx yy" in
  Alcotest.(check int) "parent still writable" 4 d.Pj_text.Document.id

let test_sub_keeps_global_ids () =
  let corpus = filled () in
  let view = Pj_index.Corpus.sub corpus ~pos:1 ~len:2 in
  Alcotest.(check int) "id = pos + i" 1
    (Pj_index.Corpus.document view 0).Pj_text.Document.id;
  Alcotest.(check int) "id = pos + i" 2
    (Pj_index.Corpus.document view 1).Pj_text.Document.id;
  Alcotest.(check bool) "shared vocabulary" true
    (Pj_index.Corpus.vocab view == Pj_index.Corpus.vocab corpus)

let test_docs_slice () =
  let corpus = filled () in
  let slice = Pj_index.Corpus.docs_slice corpus ~pos:1 ~len:2 in
  Alcotest.(check (list int)) "ids untouched" [ 1; 2 ]
    (Array.to_list (Array.map (fun d -> d.Pj_text.Document.id) slice));
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Corpus.docs_slice") (fun () ->
      ignore (Pj_index.Corpus.docs_slice corpus ~pos:3 ~len:2))

let test_build_docs_equals_build () =
  let corpus = filled () in
  let index = Pj_index.Inverted_index.build corpus in
  let sparse =
    Pj_index.Inverted_index.build_docs corpus
      (Pj_index.Corpus.docs_slice corpus ~pos:0
         ~len:(Pj_index.Corpus.size corpus))
  in
  let vocab = Pj_index.Corpus.vocab corpus in
  for tok = 0 to Pj_text.Vocab.size vocab - 1 do
    let plist ix =
      List.map
        (fun (p : Pj_index.Posting.t) ->
          (p.Pj_index.Posting.doc_id, Array.to_list p.Pj_index.Posting.positions))
        (Pj_index.Posting_list.to_list (Pj_index.Inverted_index.postings ix tok))
    in
    Alcotest.(check (list (pair int (list int))))
      (Printf.sprintf "postings of token %d" tok)
      (plist index) (plist sparse)
  done

let suite =
  [
    Alcotest.test_case "sub views reject writes" `Quick test_sub_rejects_writes;
    Alcotest.test_case "sub keeps global ids" `Quick test_sub_keeps_global_ids;
    Alcotest.test_case "docs_slice" `Quick test_docs_slice;
    Alcotest.test_case "build_docs = build over all docs" `Quick
      test_build_docs_equals_build;
  ]
