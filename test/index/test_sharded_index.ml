open Pj_index

let sample_corpus () =
  let c = Corpus.create () in
  ignore (Corpus.add_text c "lenovo partners with nba lenovo wins");
  ignore (Corpus.add_text c "dell and lenovo compete");
  ignore (Corpus.add_text c "");
  ignore (Corpus.add_text c "the olympic games in beijing 2008");
  ignore (Corpus.add_text c "nba games in beijing");
  c

let test_balanced_build () =
  let c = sample_corpus () in
  let s = Sharded_index.build ~shards:2 c in
  Alcotest.(check int) "two shards" 2 (Sharded_index.n_shards s);
  Alcotest.(check (array int)) "sizes within one" [| 3; 2 |]
    (Sharded_index.counts s);
  Alcotest.(check (pair int int)) "first range" (0, 3) (Sharded_index.range s 0);
  Alcotest.(check (pair int int)) "second range" (3, 2) (Sharded_index.range s 1);
  (* Postings keep global document ids: "nba" occurs in docs 0 and 4,
     each found in its own shard under its original id. *)
  let df i word =
    Posting_list.document_frequency
      (Inverted_index.postings_of_word (Sharded_index.shard s i) word)
  in
  Alcotest.(check int) "nba in shard 0" 1 (df 0 "nba");
  Alcotest.(check int) "nba in shard 1" 1 (df 1 "nba");
  let pl = Inverted_index.postings_of_word (Sharded_index.shard s 1) "nba" in
  let cur = Posting_list.cursor pl in
  Alcotest.(check int) "global doc id survives" 4
    (Posting_list.current_doc cur)

let test_one_shard_is_monolithic () =
  let c = sample_corpus () in
  let s = Sharded_index.build ~shards:1 c in
  Alcotest.(check int) "one shard" 1 (Sharded_index.n_shards s);
  Alcotest.(check (array int)) "covers everything" [| Corpus.size c |]
    (Sharded_index.counts s);
  let mono = Inverted_index.build c in
  let vocab = Corpus.vocab c in
  for tok = 0 to Pj_text.Vocab.size vocab - 1 do
    let w = Pj_text.Vocab.word vocab tok in
    Alcotest.(check int) ("df of " ^ w)
      (Posting_list.document_frequency (Inverted_index.postings_of_word mono w))
      (Posting_list.document_frequency
         (Inverted_index.postings_of_word (Sharded_index.shard s 0) w))
  done

let test_more_shards_than_docs () =
  let c = sample_corpus () in
  let s = Sharded_index.build ~shards:9 c in
  Alcotest.(check int) "all nine shards exist" 9 (Sharded_index.n_shards s);
  Alcotest.(check int) "counts still cover the corpus" (Corpus.size c)
    (Array.fold_left ( + ) 0 (Sharded_index.counts s));
  (* Trailing shards are empty and answer queries with no postings. *)
  let stats = Inverted_index.stats (Sharded_index.shard s 8) in
  Alcotest.(check int) "empty shard has no postings" 0
    stats.Inverted_index.n_postings;
  Alcotest.(check bool) "no doc maps to an empty shard" true
    (Sharded_index.shard_of_doc s 4 <> Some 8)

let test_explicit_empty_middle_shard () =
  let c = sample_corpus () in
  let s = Sharded_index.build_with_counts c [| 2; 0; 3 |] in
  Alcotest.(check (pair int int)) "empty middle range" (2, 0)
    (Sharded_index.range s 1);
  Alcotest.(check (option int)) "doc 1 -> shard 0" (Some 0)
    (Sharded_index.shard_of_doc s 1);
  Alcotest.(check (option int)) "doc 2 -> shard 2, skipping the empty one"
    (Some 2)
    (Sharded_index.shard_of_doc s 2);
  Alcotest.(check (option int)) "doc beyond the corpus" None
    (Sharded_index.shard_of_doc s 99);
  Alcotest.(check (option int)) "negative doc id" None
    (Sharded_index.shard_of_doc s (-1))

let test_invalid_layouts_rejected () =
  let c = sample_corpus () in
  Alcotest.(check bool) "empty layout" true
    (match Sharded_index.build_with_counts c [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "short layout" true
    (match Sharded_index.build_with_counts c [| 2; 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Non-positive shard requests clamp rather than fail. *)
  Alcotest.(check int) "shards:0 clamps to 1" 1
    (Sharded_index.n_shards (Sharded_index.build ~shards:0 c))

let test_stats_merge () =
  let c = sample_corpus () in
  let mono = Inverted_index.stats (Inverted_index.build c) in
  let merged = Sharded_index.stats (Sharded_index.build ~shards:3 c) in
  Alcotest.(check int) "tokens" mono.Inverted_index.n_tokens
    merged.Inverted_index.n_tokens;
  Alcotest.(check int) "postings sum across shards"
    mono.Inverted_index.n_postings merged.Inverted_index.n_postings;
  Alcotest.(check int) "positions sum across shards"
    mono.Inverted_index.n_positions merged.Inverted_index.n_positions

let test_corpus_sub () =
  let c = sample_corpus () in
  let view = Corpus.sub c ~pos:1 ~len:2 in
  Alcotest.(check int) "view size" 2 (Corpus.size view);
  Alcotest.(check bool) "vocabulary is shared, not copied" true
    (Corpus.vocab view == Corpus.vocab c);
  Alcotest.(check int) "documents keep global ids" 1
    (Corpus.document view 0).Pj_text.Document.id;
  List.iter
    (fun (pos, len) ->
      Alcotest.(check bool)
        (Printf.sprintf "sub ~pos:%d ~len:%d rejected" pos len)
        true
        (match Corpus.sub c ~pos ~len with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ (-1, 2); (0, -1); (4, 2) ]

let suite =
  [
    ("sharded: balanced build", `Quick, test_balanced_build);
    ("sharded: one shard = monolithic", `Quick, test_one_shard_is_monolithic);
    ("sharded: more shards than docs", `Quick, test_more_shards_than_docs);
    ("sharded: explicit empty shard", `Quick, test_explicit_empty_middle_shard);
    ("sharded: invalid layouts", `Quick, test_invalid_layouts_rejected);
    ("sharded: stats merge", `Quick, test_stats_merge);
    ("sharded: corpus sub views", `Quick, test_corpus_sub);
  ]
