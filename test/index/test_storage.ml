open Pj_index

let temp_path () = Filename.temp_file "proxjoin_test" ".pjix"

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Storage.write_varint buf n;
      let pos = ref 0 in
      Alcotest.(check int)
        (Printf.sprintf "varint %d" n)
        n
        (Storage.read_varint (Buffer.contents buf) ~pos);
      Alcotest.(check int) "fully consumed" (Buffer.length buf) !pos)
    [ 0; 1; 127; 128; 300; 16_383; 16_384; 1_000_000; max_int / 4 ]

let test_varint_random_roundtrip () =
  let rng = Pj_util.Prng.create 77 in
  let buf = Buffer.create 4096 in
  let values = Array.init 500 (fun _ -> Pj_util.Prng.int rng 10_000_000) in
  Array.iter (Storage.write_varint buf) values;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  Array.iter
    (fun expected ->
      Alcotest.(check int) "sequence value" expected (Storage.read_varint s ~pos))
    values;
  Alcotest.(check int) "consumed" (String.length s) !pos

let test_varint_truncation () =
  Alcotest.check_raises "truncated" (Failure "Storage: truncated varint")
    (fun () -> ignore (Storage.read_varint "\x80" ~pos:(ref 0)))

let sample_corpus () =
  let c = Corpus.create () in
  ignore (Corpus.add_text c "lenovo partners with nba lenovo wins");
  ignore (Corpus.add_text c "dell and lenovo compete");
  ignore (Corpus.add_text c "");
  ignore (Corpus.add_text c "the olympic games in beijing 2008");
  c

let corpora_equal a b =
  Corpus.size a = Corpus.size b
  && begin
       let ok = ref true in
       for i = 0 to Corpus.size a - 1 do
         let da = Corpus.document a i and db = Corpus.document b i in
         if
           Pj_text.Document.text (Corpus.vocab a) da
           <> Pj_text.Document.text (Corpus.vocab b) db
         then ok := false
       done;
       !ok
     end

let test_corpus_roundtrip () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let c' = Storage.load_corpus path in
      Alcotest.(check bool) "documents identical" true (corpora_equal c c'))

let test_index_roundtrip () =
  let c = sample_corpus () in
  let idx = Inverted_index.build c in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save idx path;
      let idx' = Storage.load path in
      (* Same posting statistics for every word of the original vocab. *)
      let vocab = Corpus.vocab c in
      for tok = 0 to Pj_text.Vocab.size vocab - 1 do
        let w = Pj_text.Vocab.word vocab tok in
        Alcotest.(check int)
          ("df of " ^ w)
          (Posting_list.document_frequency (Inverted_index.postings_of_word idx w))
          (Posting_list.document_frequency (Inverted_index.postings_of_word idx' w))
      done)

let test_empty_corpus_roundtrip () =
  let c = Corpus.create () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      Alcotest.(check int) "empty" 0 (Corpus.size (Storage.load_corpus path)))

let test_bad_magic () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOPE whatever";
      close_out oc;
      Alcotest.check_raises "rejected"
        (Failure "Storage: not a proxjoin corpus file") (fun () ->
          ignore (Storage.load_corpus path)))

let check_load_fails ~msg_contains path =
  match Storage.load_corpus path with
  | _ -> Alcotest.failf "load succeeded; wanted failure about %s" msg_contains
  | exception Failure msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      if not (contains msg msg_contains) then
        Alcotest.failf "error %S does not mention %S" msg msg_contains

let test_trailing_bytes () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "junk";
      close_out oc;
      (* Appended junk shifts the CRC footer, so v2 detects it as
         corruption. *)
      check_load_fails ~msg_contains:"CRC mismatch" path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let test_bit_flip_detected () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let s = read_bytes path in
      (* Flip one payload bit in the middle of the file. *)
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      write_bytes path (Bytes.to_string b);
      check_load_fails ~msg_contains:"CRC mismatch" path)

let test_truncation_detected () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      let s = read_bytes path in
      write_bytes path (String.sub s 0 (String.length s - 3));
      check_load_fails ~msg_contains:"CRC mismatch" path;
      (* Truncating into the header itself is caught even earlier. *)
      write_bytes path (String.sub s 0 6);
      check_load_fails ~msg_contains:"truncated" path)

(* Byte length of the trailing shard section [Storage.save_corpus]
   writes for an unsharded corpus: varint 1 followed by varint n_docs. *)
let shard_section_bytes c =
  let buf = Buffer.create 8 in
  Storage.write_varint buf 1;
  Storage.write_varint buf (Corpus.size c);
  Buffer.length buf

(* Rebuild the historic formats out of a freshly saved v3 file: v2 is
   the payload without the shard section under version byte 2 (CRC
   recomputed); v1 additionally drops the CRC footer. *)
let downgrade_file c path ~to_version =
  Storage.save_corpus c path;
  let s = read_bytes path in
  Alcotest.(check char) "v3 version byte" '\003' s.[4];
  let payload =
    String.sub s 5 (String.length s - 5 - 4 - shard_section_bytes c)
  in
  let old =
    match to_version with
    | 1 -> String.sub s 0 4 ^ "\001" ^ payload
    | 2 ->
        let body = String.sub s 0 4 ^ "\002" ^ payload in
        let crc = Storage.crc32 ~pos:5 body in
        let footer = Bytes.create 4 in
        Bytes.set_int32_le footer 0 crc;
        body ^ Bytes.to_string footer
    | v -> Alcotest.failf "no downgrade to version %d" v
  in
  write_bytes path old

let test_old_versions_still_load () =
  let c = sample_corpus () in
  List.iter
    (fun v ->
      let path = temp_path () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          downgrade_file c path ~to_version:v;
          let c' = Storage.load_corpus path in
          Alcotest.(check bool)
            (Printf.sprintf "v%d roundtrip" v)
            true (corpora_equal c c');
          (* Pre-layout files open as a single shard over everything. *)
          let sharded = Storage.load_sharded path in
          Alcotest.(check int)
            (Printf.sprintf "v%d loads as one shard" v)
            1
            (Sharded_index.n_shards sharded);
          Alcotest.(check int)
            (Printf.sprintf "v%d shard covers the corpus" v)
            (Corpus.size c)
            (Sharded_index.counts sharded).(0)))
    [ 1; 2 ]

let test_sharded_roundtrip () =
  let c = sample_corpus () in
  let sharded = Sharded_index.build ~shards:3 c in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Storage.save_sharded sharded path;
      let sharded' = Storage.load_sharded path in
      Alcotest.(check (array int)) "shard layout survives"
        (Sharded_index.counts sharded)
        (Sharded_index.counts sharded');
      Alcotest.(check bool) "documents identical" true
        (corpora_equal c (Sharded_index.corpus sharded'));
      (* An unsharded save reopens as exactly one shard. *)
      Storage.save_corpus c path;
      Alcotest.(check (array int)) "plain corpus is one shard"
        [| Corpus.size c |]
        (Sharded_index.counts (Storage.load_sharded path)))

let test_bad_shard_layout_rejected () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Regenerate the file with a shard section claiming more
         documents than the corpus holds; the CRC is valid, so only
         the layout validation can catch it. *)
      Storage.save_corpus c path;
      let s = read_bytes path in
      let body_end = String.length s - 4 - shard_section_bytes c in
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf (String.sub s 0 body_end);
      Storage.write_varint buf 2;
      Storage.write_varint buf (Corpus.size c);
      Storage.write_varint buf (Corpus.size c);
      let contents = Buffer.contents buf in
      let crc = Storage.crc32 ~pos:5 contents in
      let footer = Bytes.create 4 in
      Bytes.set_int32_le footer 0 crc;
      Buffer.add_bytes buf footer;
      write_bytes path (Buffer.contents buf);
      check_load_fails ~msg_contains:"shard layout" path)

(* A panic failpoint anywhere inside [save_corpus] must model a crash:
   whatever was at [path] before stays loadable, byte for byte. *)
let test_crashed_save_leaves_old_file () =
  let c1 = sample_corpus () in
  let c2 = Corpus.create () in
  ignore (Corpus.add_text c2 "a completely different corpus");
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      Pj_util.Failpoint.clear ();
      Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      Storage.save_corpus c1 path;
      let before = read_bytes path in
      List.iter
        (fun site ->
          Pj_util.Failpoint.clear ();
          Pj_util.Failpoint.arm site Pj_util.Failpoint.Panic;
          (match Storage.save_corpus c2 path with
          | () -> Alcotest.failf "save survived %s panic" site
          | exception Pj_util.Failpoint.Panicked _ -> ());
          Alcotest.(check string)
            (site ^ ": target file untouched")
            before (read_bytes path);
          Alcotest.(check bool)
            (site ^ ": old corpus still loads")
            true
            (corpora_equal c1 (Storage.load_corpus path)))
        [ "storage.save.write"; "storage.save.rename" ];
      (* After the "crash", a clean save goes through and wins. *)
      Pj_util.Failpoint.clear ();
      Storage.save_corpus c2 path;
      Alcotest.(check bool) "new corpus after recovery" true
        (corpora_equal c2 (Storage.load_corpus path)))

(* A half-written temp file must never shadow the real index, and a
   partial file at the final path is rejected by the CRC (exercised by
   test_truncation_detected) with a [Failure], never a raw decoder
   exception. *)
let test_garbage_never_escapes_as_raw_exception () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* A header that lies about its sizes: valid magic + version 1
         (no CRC to catch it), then a varint promising a vocabulary so
         large the string reader runs off the end. *)
      let buf = Buffer.create 32 in
      Buffer.add_string buf "PJIX\001";
      Storage.write_varint buf 3;
      Storage.write_varint buf 1_000_000;
      write_bytes path (Buffer.contents buf);
      match Storage.load_corpus path with
      | _ -> Alcotest.fail "bogus file loaded"
      | exception Failure msg ->
          Alcotest.(check bool) "clear Storage error" true
            (String.length msg >= 8 && String.sub msg 0 8 = "Storage:")
      | exception e ->
          Alcotest.failf "raw exception escaped: %s" (Printexc.to_string e))

let test_load_failpoint_injects () =
  let c = sample_corpus () in
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      Pj_util.Failpoint.clear ();
      Sys.remove path)
    (fun () ->
      Storage.save_corpus c path;
      Pj_util.Failpoint.arm "storage.load" Pj_util.Failpoint.Fail;
      (match Storage.load_corpus path with
      | _ -> Alcotest.fail "failpoint did not fire"
      | exception Pj_util.Failpoint.Injected "storage.load" -> ());
      Pj_util.Failpoint.clear ();
      Alcotest.(check bool) "loads once cleared" true
        (corpora_equal c (Storage.load_corpus path)))

(* Truncate-at-every-offset fuzz: whatever the cut point and whatever
   the format version, [load] fails with a descriptive [Failure
   "Storage: ..."] — never a raw decoder exception, never a successful
   load of a partial file. (v1 has no CRC, so its parser must catch
   every truncation structurally.) *)
let test_truncation_fuzz_all_versions () =
  let c = sample_corpus () in
  List.iter
    (fun v ->
      let path = temp_path () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          if v = 3 then Storage.save_corpus c path
          else downgrade_file c path ~to_version:v;
          let s = read_bytes path in
          for cut = 0 to String.length s - 1 do
            write_bytes path (String.sub s 0 cut);
            match Storage.load_corpus path with
            | _ -> Alcotest.failf "v%d: truncation at %d loaded" v cut
            | exception Failure msg ->
                if not (String.length msg >= 8 && String.sub msg 0 8 = "Storage:")
                then Alcotest.failf "v%d cut %d: unexpected message %S" v cut msg
            | exception e ->
                Alcotest.failf "v%d cut %d: raw exception escaped: %s" v cut
                  (Printexc.to_string e)
          done))
    [ 1; 2; 3 ]

let test_crc32_known_value () =
  (* The standard check value: CRC-32 of "123456789". *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Storage.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Storage.crc32 "");
  Alcotest.(check int32) "substring"
    (Storage.crc32 "456")
    (Storage.crc32 ~pos:3 ~len:3 "123456789")

let suite =
  [
    ("storage: varint roundtrip", `Quick, test_varint_roundtrip);
    ("storage: varint sequence", `Quick, test_varint_random_roundtrip);
    ("storage: varint truncation", `Quick, test_varint_truncation);
    ("storage: corpus roundtrip", `Quick, test_corpus_roundtrip);
    ("storage: index roundtrip", `Quick, test_index_roundtrip);
    ("storage: empty corpus", `Quick, test_empty_corpus_roundtrip);
    ("storage: bad magic", `Quick, test_bad_magic);
    ("storage: trailing bytes", `Quick, test_trailing_bytes);
    ("storage: bit flip detected", `Quick, test_bit_flip_detected);
    ("storage: truncation detected", `Quick, test_truncation_detected);
    ("storage: v1/v2 still load", `Quick, test_old_versions_still_load);
    ("storage: truncation fuzz v1/v2/v3", `Quick, test_truncation_fuzz_all_versions);
    ("storage: sharded roundtrip", `Quick, test_sharded_roundtrip);
    ("storage: bad shard layout rejected", `Quick, test_bad_shard_layout_rejected);
    ("storage: crc32 check value", `Quick, test_crc32_known_value);
    ("storage: crashed save leaves old file", `Quick, test_crashed_save_leaves_old_file);
    ("storage: no raw exception on garbage", `Quick, test_garbage_never_escapes_as_raw_exception);
    ("storage: load failpoint", `Quick, test_load_failpoint_injects);
  ]
