let () =
  Alcotest.run "proxjoin.index"
    [
      ("posting", Test_posting.suite);
      ("corpus", Test_corpus.suite);
      ("cursor", Test_cursor.suite);
      ("inverted_index", Test_inverted_index.suite);
      ("sharded_index", Test_sharded_index.suite);
      ("storage", Test_storage.suite);
    ]
