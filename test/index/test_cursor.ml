open Pj_index

let list_of_doc_ids ids =
  Posting_list.of_postings
    (List.map (fun d -> Posting.make ~doc_id:d ~positions:[| 0 |]) ids)

let current_doc_ids c =
  let rec go acc =
    match Posting_list.current c with
    | None -> List.rev acc
    | Some p ->
        Posting_list.next c;
        go (p.Posting.doc_id :: acc)
  in
  go []

let test_empty () =
  let c = Posting_list.cursor Posting_list.empty in
  Alcotest.(check bool) "current" true (Posting_list.current c = None);
  Alcotest.(check int) "current_doc" (-1) (Posting_list.current_doc c);
  Posting_list.next c;
  Posting_list.seek c 42;
  Alcotest.(check bool) "still exhausted" true (Posting_list.current c = None)

let test_walk () =
  let pl = list_of_doc_ids [ 1; 3; 7; 8; 20 ] in
  let c = Posting_list.cursor pl in
  Alcotest.(check (list int)) "walk order" [ 1; 3; 7; 8; 20 ]
    (current_doc_ids c);
  Alcotest.(check int) "exhausted" (-1) (Posting_list.current_doc c)

let test_seek_semantics () =
  let pl = list_of_doc_ids [ 1; 3; 7; 8; 20 ] in
  let c = Posting_list.cursor pl in
  Posting_list.seek c 3;
  Alcotest.(check int) "present target" 3 (Posting_list.current_doc c);
  Posting_list.seek c 4;
  Alcotest.(check int) "absent target lands after" 7
    (Posting_list.current_doc c);
  (* Seeking backwards never moves the cursor. *)
  Posting_list.seek c 1;
  Alcotest.(check int) "backwards no-op" 7 (Posting_list.current_doc c);
  Posting_list.seek c 7;
  Alcotest.(check int) "current target no-op" 7 (Posting_list.current_doc c);
  Posting_list.seek c 20;
  Alcotest.(check int) "gallop to last" 20 (Posting_list.current_doc c);
  Posting_list.seek c 21;
  Alcotest.(check int) "past end exhausts" (-1) (Posting_list.current_doc c)

let test_seek_first_element () =
  let pl = list_of_doc_ids [ 5; 9 ] in
  let c = Posting_list.cursor pl in
  Posting_list.seek c 2;
  Alcotest.(check int) "below first is no-op" 5 (Posting_list.current_doc c)

(* Galloping seek must land exactly where a linear scan would, from any
   starting position and for any target — including long jumps that
   exercise the doubling probe and jumps past the end. The model is a
   persistent index advanced linearly, so it also checks that seek
   never rewinds. *)
let test_seek_matches_linear_scan () =
  let rng = Pj_util.Prng.create 11 in
  for trial = 1 to 200 do
    let n = 1 + Pj_util.Prng.int rng 60 in
    let set = Hashtbl.create n in
    for _ = 1 to n do
      Hashtbl.replace set (Pj_util.Prng.int rng 500) ()
    done;
    let ids =
      Array.of_list
        (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) set []))
    in
    let len = Array.length ids in
    let pl = list_of_doc_ids (Array.to_list ids) in
    let c = Posting_list.cursor pl in
    let mpos = ref 0 in
    for _ = 1 to 40 do
      (if Pj_util.Prng.int rng 4 = 0 then begin
         Posting_list.next c;
         if !mpos < len then incr mpos
       end
       else begin
         let target = Pj_util.Prng.int rng 600 in
         Posting_list.seek c target;
         while !mpos < len && ids.(!mpos) < target do
           incr mpos
         done
       end);
      let expected = if !mpos < len then ids.(!mpos) else -1 in
      let got = Posting_list.current_doc c in
      if got <> expected then
        Alcotest.failf "trial %d: cursor at %d, model at %d (ids %s)" trial got
          expected
          (String.concat ","
             (List.map string_of_int (Array.to_list ids)))
    done
  done

let suite =
  [
    ("cursor: empty list", `Quick, test_empty);
    ("cursor: walk", `Quick, test_walk);
    ("cursor: seek semantics", `Quick, test_seek_semantics);
    ("cursor: seek below first", `Quick, test_seek_first_element);
    ("cursor: seek = linear scan", `Quick, test_seek_matches_linear_scan);
  ]
