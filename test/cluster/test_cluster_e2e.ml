open Pj_server
module Frame = Pj_frame.Frame
module Wire = Pj_frame.Wire
module Backend = Pj_cluster.Backend
module Router = Pj_cluster.Router

(* Same corpus as the server e2e suite, split into contiguous slices so
   a router over per-slice backends serves the same global doc ids as a
   monolithic server over the whole list. *)
let texts =
  [
    "lenovo signs a partnership with the nba this season";
    "the nba expanded its partnership program with dell";
    "unrelated document about gardening and weather";
    "lenovo mentioned briefly and much later a partnership of others";
    "dell and lenovo compete for the nba partnership deal";
    "nba nba nba partnership partnership lenovo at the end";
    "a partnership between gardeners and the weather service";
    "lenovo dell nba partnership all adjacent here";
  ]

let slice ~from ~len = List.filteri (fun i _ -> i >= from && i < from + len) texts
let stems text =
  Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)

let build_searcher texts =
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_tokens corpus (stems t))) texts;
  Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)

(* The oracle: raw (global_id, score) pairs a given slice contributes,
   already rebased. Renders through the same Protocol formatters the
   server uses, at either wire's precision. *)
let slice_pairs ~base texts ~family ~alpha ~k terms =
  let searcher = build_searcher texts in
  let graph = Pj_ontology.Mini_wordnet.create () in
  match Pj_matching.Query_parser.parse graph terms with
  | Error msg -> Alcotest.failf "oracle query failed to parse: %s" msg
  | Ok query ->
      let query =
        {
          query with
          Pj_matching.Query.matchers =
            Array.map Pj_matching.Matcher.stem_expansions
              query.Pj_matching.Query.matchers;
        }
      in
      let scoring =
        match Protocol.scoring_of ~family ~alpha with
        | Ok s -> s
        | Error msg -> failwith msg
      in
      List.map
        (fun (h : Pj_engine.Searcher.hit) ->
          (h.Pj_engine.Searcher.doc_id + base, h.Pj_engine.Searcher.score))
        (Pj_engine.Searcher.search ~k searcher scoring query)

let mono_response ?precision ~family ~alpha ~k terms =
  Protocol.string_of_id_scores ?precision
    (slice_pairs ~base:0 texts ~family ~alpha ~k terms)

let queries =
  [
    ("win", 0.2, 5, [ "exact:lenovo"; "exact:nba"; "exact:partnership" ]);
    ("med", 0.1, 3, [ "exact:lenovo"; "exact:partnership" ]);
    ("max", 0.1, 10, [ "exact:dell"; "exact:nba" ]);
    ("win", 0.5, 2, [ "exact:partnership"; "exact:weather" ]);
    ("win", 0.2, 5, [ "stem:gardening" ]);
    ("med", 0.3, 4, [ "exact:nba"; "exact:partnership" ]);
  ]

let search_line (family, alpha, k, terms) =
  Printf.sprintf "SEARCH %s %g %d %s" family alpha k (String.concat " " terms)

(* ---- socket clients -------------------------------------------------- *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* Nothing in this suite may hang: a stuck read is a 20 s Sys_error,
     i.e. a test failure, not a wedged run. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 20.0;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request conn line =
  output_string conn.oc line;
  output_char conn.oc '\n';
  flush conn.oc;
  input_line conn.ic

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let bsend conn ~id line =
  Wire.write_flush conn.oc { Frame.kind = Frame.Request; id; payload = line }

let brecv conn =
  match Wire.read conn.ic with
  | Wire.Frame f -> f
  | Wire.Closed -> Alcotest.fail "binary connection closed unexpectedly"
  | Wire.Bad _ -> Alcotest.fail "server sent a malformed frame"

let brequest conn ~id line =
  bsend conn ~id line;
  let f = brecv conn in
  Alcotest.(check int) "response id echoes request id" id f.Frame.id;
  (f.Frame.kind, f.Frame.payload)

let int_field line name =
  let pat = " " ^ name ^ "=" in
  let n = String.length pat and len = String.length line in
  let rec find i =
    if i + n > len then Alcotest.failf "field %s missing in %S" name line
    else if String.sub line i n = pat then i + n
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while !stop < len && line.[!stop] <> ' ' do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

let contains line sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
  in
  go 0

(* ---- cluster scaffolding --------------------------------------------- *)

let light = { Server.default_config with Server.domains = 1 }

let start_backend texts =
  let searcher = build_searcher texts in
  let graph = Pj_ontology.Mini_wordnet.create () in
  Server.start ~config:light ~n_docs:(List.length texts) ~graph
    (Worker_pool.of_searcher searcher)

let spec_of server =
  { Router.host = "127.0.0.1"; port = Server.port server; base = None }

let never_searches ~scoring:_ ~k:_ ~deadline:_ _query =
  Ok ([], [])

(* Start [1 + replicas] backend servers per slice (all serving that same
   slice), a router over them with bases derived from STATS docs=, and
   the router-front server. [f] gets the front server, the router, and
   the backend servers as a per-leg list (primary first). *)
let with_cluster ?(replicas = 0) ~slices f =
  let backends =
    List.map (fun texts -> List.init (replicas + 1) (fun _ -> start_backend texts))
      slices
  in
  let stop_backends () =
    List.iter (List.iter (fun s -> Server.stop s)) backends
  in
  let legs =
    List.map
      (fun servers ->
        match List.map spec_of servers with
        | p :: rs -> (p, rs)
        | [] -> assert false)
      backends
  in
  match Router.create ~legs () with
  | Error e ->
      stop_backends ();
      Alcotest.failf "router failed to start: %s" e
  | Ok router ->
      let front =
        Server.start ~config:light ~forward:(Router.search router)
          ~extra_stats:(fun () -> Router.stats_extra router)
          ~graph:(Pj_ontology.Mini_wordnet.create ())
          never_searches
      in
      Fun.protect
        ~finally:(fun () ->
          Server.stop front;
          Router.close router;
          stop_backends ())
        (fun () -> f front router backends)

(* ---- tests ----------------------------------------------------------- *)

let test_routed_matches_mono () =
  (* Both splits — an even 4/4 and an uneven 3/3/2 — must answer every
     query byte-for-byte like a monolithic server over the full corpus,
     on both wire dialects. *)
  List.iter
    (fun slices ->
      with_cluster ~slices (fun front _router _backends ->
          let conn = connect (Server.port front) in
          Fun.protect
            ~finally:(fun () -> close conn)
            (fun () ->
              List.iter
                (fun ((family, alpha, k, terms) as q) ->
                  Alcotest.(check string)
                    (Printf.sprintf "routed text response for %s" (search_line q))
                    (mono_response ~family ~alpha ~k terms)
                    (request conn (search_line q)))
                queries);
          let bconn = connect (Server.port front) in
          Fun.protect
            ~finally:(fun () -> close bconn)
            (fun () ->
              List.iteri
                (fun i ((family, alpha, k, terms) as q) ->
                  let kind, payload = brequest bconn ~id:(i + 1) (search_line q) in
                  Alcotest.(check bool) "binary response kind" true
                    (kind = Frame.Response);
                  Alcotest.(check string)
                    (Printf.sprintf "routed binary response for %s" (search_line q))
                    (mono_response ~precision:Protocol.exact_precision ~family
                       ~alpha ~k terms)
                    payload)
                queries)))
    [
      [ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ];
      [ slice ~from:0 ~len:3; slice ~from:3 ~len:3; slice ~from:6 ~len:2 ];
    ]

let test_text_and_binary_interleave () =
  (* One backend server, one text client and one binary client taking
     turns on the same socket loop: each sees its own dialect's
     rendering of the same searches, neither corrupts the other. *)
  let server = start_backend texts in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let t = connect (Server.port server) in
      let b = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () ->
          close t;
          close b)
        (fun () ->
          List.iteri
            (fun i ((family, alpha, k, terms) as q) ->
              let text_got = request t (search_line q) in
              Alcotest.(check string) "text dialect at text precision"
                (mono_response ~family ~alpha ~k terms)
                text_got;
              let _, bin_got = brequest b ~id:(i + 10) (search_line q) in
              Alcotest.(check string) "binary dialect at exact precision"
                (mono_response ~precision:Protocol.exact_precision ~family
                   ~alpha ~k terms)
                bin_got;
              Alcotest.(check string) "text ping" "PONG" (request t "PING");
              let _, pong = brequest b ~id:(i + 100) "PING" in
              Alcotest.(check string) "binary ping" "PONG" pong)
            queries))

let test_binary_pipelining () =
  (* Many requests written before any response is read; answers are
     matched by request id, whatever order they arrive in. *)
  let server = start_backend texts in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let n = List.length queries in
          let rounds = 5 in
          let total = n * rounds in
          let want = Hashtbl.create total in
          for r = 0 to rounds - 1 do
            List.iteri
              (fun i ((family, alpha, k, terms) as q) ->
                let id = 1000 + (r * n) + i in
                Hashtbl.replace want id
                  (mono_response ~precision:Protocol.exact_precision ~family
                     ~alpha ~k terms);
                bsend conn ~id (search_line q))
              queries
          done;
          for _ = 1 to total do
            let f = brecv conn in
            match Hashtbl.find_opt want f.Frame.id with
            | None -> Alcotest.failf "unknown or duplicate id %d" f.Frame.id
            | Some expected ->
                Alcotest.(check string)
                  (Printf.sprintf "pipelined response %d" f.Frame.id)
                  expected f.Frame.payload;
                Hashtbl.remove want f.Frame.id
          done;
          Alcotest.(check int) "every request answered" 0 (Hashtbl.length want)))

let test_binary_inflight_cap_still_answers_all () =
  (* A tiny in-flight cap throttles the reader (TCP backpressure), but
     every pipelined request is still answered, correctly and exactly
     once. *)
  let searcher = build_searcher texts in
  let server =
    Server.start
      ~config:{ light with Server.binary_inflight = 2 }
      ~n_docs:(List.length texts)
      ~graph:(Pj_ontology.Mini_wordnet.create ())
      (Worker_pool.of_searcher searcher)
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let q = List.hd queries in
          let family, alpha, k, terms = q in
          let expected =
            mono_response ~precision:Protocol.exact_precision ~family ~alpha
              ~k terms
          in
          let total = 40 in
          (* Writer thread: the reader (this thread) must drain while
             the writer is still pushing, or a 2-deep cap plus a full
             socket buffer could deadlock the single client. *)
          let writer =
            Thread.create
              (fun () ->
                for id = 1 to total do
                  bsend conn ~id (search_line q)
                done)
              ()
          in
          let seen = Array.make (total + 1) false in
          for _ = 1 to total do
            let f = brecv conn in
            Alcotest.(check string) "capped response" expected f.Frame.payload;
            if seen.(f.Frame.id) then
              Alcotest.failf "id %d answered twice" f.Frame.id;
            seen.(f.Frame.id) <- true
          done;
          Thread.join writer))

let test_hostile_binary_input () =
  (* Oversized, corrupt, and garbage frames each cost exactly one framed
     error and the connection — never the server. *)
  let server = start_backend texts in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let expect_fatal name send =
        let conn = connect (Server.port server) in
        Fun.protect
          ~finally:(fun () -> close conn)
          (fun () ->
            send conn;
            (match Wire.read conn.ic with
            | Wire.Frame f ->
                Alcotest.(check bool)
                  (name ^ ": one framed error") true
                  (f.Frame.kind = Frame.Error_frame
                  && String.length f.Frame.payload >= 4
                  && String.sub f.Frame.payload 0 4 = "ERR ")
            | _ -> Alcotest.failf "%s: expected an error frame" name);
            match Wire.read conn.ic with
            | Wire.Closed -> ()
            | Wire.Frame _ -> Alcotest.failf "%s: server kept talking" name
            | Wire.Bad _ -> Alcotest.failf "%s: trailing garbage" name)
      in
      expect_fatal "oversized" (fun conn ->
          bsend conn ~id:1
            (String.make (Protocol.max_line_bytes + 128) 'a'));
      expect_fatal "negative length" (fun conn ->
          let b = Bytes.create 8 in
          Bytes.set b 0 Frame.magic_byte;
          Bytes.set b 1 'P';
          Bytes.set b 2 'J';
          Bytes.set b 3 (Char.chr Frame.version);
          Bytes.set_int32_be b 4 (-77l);
          output_bytes conn.oc b;
          flush conn.oc);
      expect_fatal "garbage after magic" (fun conn ->
          output_string conn.oc (String.make 1 Frame.magic_byte ^ "garbage!");
          flush conn.oc);
      expect_fatal "corrupt crc" (fun conn ->
          let s =
            Bytes.of_string
              (Frame.to_string
                 { Frame.kind = Frame.Request; id = 3; payload = "PING" })
          in
          let last = Bytes.length s - 1 in
          Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 0xff));
          output_bytes conn.oc s;
          flush conn.oc);
      (* All that abuse was per-connection. *)
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let _, pong = brequest conn ~id:9 "PING" in
          Alcotest.(check string) "server survives" "PONG" pong))

let test_replica_failover () =
  (* Kill leg 0's primary: the router must answer the full, undegraded
     result off the replica and count the failover. *)
  with_cluster ~replicas:1
    ~slices:[ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ]
    (fun front router backends ->
      let conn = connect (Server.port front) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          let q0 = List.hd queries in
          let family, alpha, k, terms = q0 in
          Alcotest.(check string) "healthy first"
            (mono_response ~family ~alpha ~k terms)
            (request conn (search_line q0));
          Server.kill (List.hd (List.hd backends));
          (* A different query: the first one is now cached at the
             front, and this test is about the failover path. *)
          let q1 = List.nth queries 2 in
          let family, alpha, k, terms = q1 in
          Alcotest.(check string) "failover answer is complete and exact"
            (mono_response ~family ~alpha ~k terms)
            (request conn (search_line q1));
          Alcotest.(check bool) "retry counted" true
            (Router.backend_retries router >= 1);
          Alcotest.(check bool) "failover counted" true
            (Router.failovers router >= 1);
          let stats = request conn "STATS" in
          Alcotest.(check bool) "failovers on the wire" true
            (int_field stats "failovers" >= 1);
          Alcotest.(check bool) "retries on the wire" true
            (int_field stats "backend_retries" >= 1)))

let test_degraded_is_exact_top_k_of_survivors () =
  (* No replicas: killing leg 1 must degrade, and the answer must be
     the *exact* top-k over leg 0's slice — the oracle is an in-process
     search over that slice alone. *)
  with_cluster ~slices:[ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ]
    (fun front _router backends ->
      Server.kill (List.hd (List.nth backends 1));
      let conn = connect (Server.port front) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          List.iter
            (fun ((family, alpha, k, terms) as q) ->
              let pairs =
                slice_pairs ~base:0 (slice ~from:0 ~len:4) ~family ~alpha ~k
                  terms
              in
              Alcotest.(check string)
                (Printf.sprintf "degraded oracle for %s" (search_line q))
                (Protocol.ok_degraded_ids ~failed_shards:[ 1 ] pairs)
                (request conn (search_line q)))
            queries;
          (* Degraded responses are never cached: the cache must still
             be empty after all those queries. *)
          let _, _, cache_len = Result_cache.stats (Server.cache front) in
          Alcotest.(check int) "degraded never cached" 0 cache_len;
          let stats = request conn "STATS" in
          Alcotest.(check bool) "degraded counted" true
            (int_field stats "degraded" >= List.length queries);
          Alcotest.(check bool) "dead backend visible" true
            (contains stats "backend.1.0.up=0")))

let test_failpoint_leg_and_retry () =
  (* [router.leg.0] armed: the leg fails before its frame is even
     written; the response degrades to leg 1's slice, rebased. *)
  with_cluster ~slices:[ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ]
    (fun front _router _backends ->
      let conn = connect (Server.port front) in
      Fun.protect
        ~finally:(fun () ->
          Pj_util.Failpoint.clear ();
          close conn)
        (fun () ->
          Pj_util.Failpoint.arm "router.leg.0" Pj_util.Failpoint.Fail;
          let family, alpha, k, terms = List.hd queries in
          let pairs =
            slice_pairs ~base:4 (slice ~from:4 ~len:4) ~family ~alpha ~k terms
          in
          Alcotest.(check string) "leg failpoint degrades to the other slice"
            (Protocol.ok_degraded_ids ~failed_shards:[ 0 ] pairs)
            (request conn (search_line (List.hd queries)));
          Alcotest.(check bool) "site fired" true
            (Pj_util.Failpoint.fired "router.leg.0" >= 1)));
  (* [router.retry] armed with a dead primary and a live replica: every
     failover attempt is vetoed, so the leg degrades instead of failing
     over — and the retry was still counted. *)
  with_cluster ~replicas:1
    ~slices:[ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ]
    (fun front router backends ->
      let conn = connect (Server.port front) in
      Fun.protect
        ~finally:(fun () ->
          Pj_util.Failpoint.clear ();
          close conn)
        (fun () ->
          Server.kill (List.hd (List.hd backends));
          Pj_util.Failpoint.arm "router.retry" Pj_util.Failpoint.Fail;
          let family, alpha, k, terms = List.nth queries 2 in
          let pairs =
            slice_pairs ~base:4 (slice ~from:4 ~len:4) ~family ~alpha ~k terms
          in
          Alcotest.(check string) "vetoed retry degrades"
            (Protocol.ok_degraded_ids ~failed_shards:[ 0 ] pairs)
            (request conn (search_line (List.nth queries 2)));
          Alcotest.(check bool) "retry attempted" true
            (Router.backend_retries router >= 1);
          Alcotest.(check int) "no failover happened" 0
            (Router.failovers router);
          Alcotest.(check bool) "retry site fired" true
            (Pj_util.Failpoint.fired "router.retry" >= 1)))

let test_failpoint_connect () =
  (* [router.connect] fires before the (re)connect attempt: a backend
     pointed at a live server still resolves Down while armed. *)
  let server = start_backend texts in
  let b = Backend.create ~host:"127.0.0.1" ~port:(Server.port server) in
  Fun.protect
    ~finally:(fun () ->
      Pj_util.Failpoint.clear ();
      Backend.close b;
      Server.stop server)
    (fun () ->
      Pj_util.Failpoint.arm "router.connect" Pj_util.Failpoint.Fail;
      let deadline = Pj_util.Timing.monotonic_now () +. 5. in
      (match Backend.request b ~line:"PING" ~deadline with
      | Backend.Down _ -> ()
      | Backend.Line _ | Backend.Timed_out ->
          Alcotest.fail "armed router.connect must resolve Down");
      Alcotest.(check bool) "site fired" true
        (Pj_util.Failpoint.fired "router.connect" >= 1);
      Pj_util.Failpoint.clear ();
      (* Disarmed, the same backend connects and serves. *)
      match Backend.request b ~line:"PING" ~deadline with
      | Backend.Line "PONG" -> ()
      | _ -> Alcotest.fail "backend should recover once disarmed")

let test_router_stats_invariant () =
  (* The server-tier accounting identity, asserted over the socket on a
     *router* front — including ingest verbs, which a router refuses
     with ERR but must still count. *)
  with_cluster ~slices:[ slice ~from:0 ~len:4; slice ~from:4 ~len:4 ]
    (fun front _router _backends ->
      let conn = connect (Server.port front) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          ignore (request conn (search_line (List.hd queries)));
          ignore (request conn (search_line (List.hd queries)));
          (* cached *)
          ignore (request conn (search_line (List.nth queries 1)));
          ignore (request conn "PING");
          ignore (request conn "GARBAGE VERB");
          ignore (request conn "ADDDOC not on a router");
          ignore (request conn "DELDOC 3");
          ignore (request conn "FLUSH");
          let stats = request conn "STATS" in
          Alcotest.(check int) "request accounting closes on the router"
            (int_field stats "requests")
            (int_field stats "searches"
            + int_field stats "pings"
            + int_field stats "stats"
            + int_field stats "parse_errors"
            + int_field stats "adds"
            + int_field stats "deletes"
            + int_field stats "flushes");
          Alcotest.(check int) "searches" 3 (int_field stats "searches");
          Alcotest.(check int) "cache hit" 1 (int_field stats "cache_hits");
          Alcotest.(check int) "adds" 1 (int_field stats "adds");
          Alcotest.(check int) "deletes" 1 (int_field stats "deletes");
          Alcotest.(check int) "flushes" 1 (int_field stats "flushes");
          Alcotest.(check int) "refused ingest = ingest errors" 3
            (int_field stats "ingest_errors");
          (* Router-tier fields are present and consistent. *)
          Alcotest.(check int) "router_legs" 2 (int_field stats "router_legs");
          Alcotest.(check int) "no retries in a healthy cluster" 0
            (int_field stats "backend_retries");
          Alcotest.(check int) "no failovers in a healthy cluster" 0
            (int_field stats "failovers");
          Alcotest.(check bool) "per-backend health rendered" true
            (contains stats "backend.0.0.up=1"
            && contains stats "backend.1.0.up=1");
          (* 2 uncached searches + 2 sizing STATS at create = per-leg
             requests; both legs served every uncached search. *)
          Alcotest.(check bool) "legs saw the uncached searches" true
            (int_field stats "backend.0.0.requests" >= 2
            && int_field stats "backend.1.0.requests" >= 2)))

let suite =
  [
    ("cluster: routed = mono, both dialects", `Quick, test_routed_matches_mono);
    ("cluster: text and binary interleave", `Quick, test_text_and_binary_interleave);
    ("cluster: binary pipelining by id", `Quick, test_binary_pipelining);
    ("cluster: inflight cap answers all", `Quick, test_binary_inflight_cap_still_answers_all);
    ("cluster: hostile binary input", `Quick, test_hostile_binary_input);
    ("cluster: replica failover", `Quick, test_replica_failover);
    ("cluster: degraded = exact survivors", `Quick, test_degraded_is_exact_top_k_of_survivors);
    ("cluster: failpoints leg/retry", `Quick, test_failpoint_leg_and_retry);
    ("cluster: failpoint connect", `Quick, test_failpoint_connect);
    ("cluster: router stats invariant", `Quick, test_router_stats_invariant);
  ]
