(* The chaos arm at full distance: real processes, real kill -9. Two
   `proxjoin serve` shard backends and one `proxjoin serve-router` are
   spawned from the built CLI; a client hammers the router while one
   backend is killed -9 mid-stream. Every response must stay a HITS or
   OK-DEGRADED line (never a hang — client sockets carry a 20 s receive
   timeout via Test_cluster_e2e.connect), and once the dust settles the
   degraded answer must equal the in-process oracle over the surviving
   slice, byte for byte. *)

module E = Test_cluster_e2e

let exe = "../../bin/main.exe" (* provided by the dune (deps) clause *)

let mkdtemp () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pj_cluster_proc_%d_%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1000.) mod 1_000_000))
  in
  Unix.mkdir dir 0o700;
  dir

let write_docs path texts =
  let oc = open_out path in
  List.iter (fun t -> output_string oc (t ^ "\n\n")) texts;
  close_out oc

type proc = { pid : int; log : string }

let spawn args ~log =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin fd fd
  in
  Unix.close fd;
  { pid; log }

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error _ -> ""

(* Poll the process's log for its " on 127.0.0.1:PORT " banner — both
   `serving` and `routing` print one — and return the bound port. *)
let wait_port proc =
  let needle = " on 127.0.0.1:" in
  let deadline = Unix.gettimeofday () +. 15. in
  let rec poll () =
    let log = read_file proc.log in
    let here =
      let nl = String.length needle and ll = String.length log in
      let rec find i = if i + nl > ll then None
        else if String.sub log i nl = needle then Some (i + nl)
        else find (i + 1)
      in
      find 0
    in
    match here with
    | Some start ->
        let stop = ref start in
        while !stop < String.length log
              && log.[!stop] >= '0' && log.[!stop] <= '9' do
          incr stop
        done;
        if !stop = start then Alcotest.failf "no port in banner: %s" log
        else int_of_string (String.sub log start (!stop - start))
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "process %d never printed its banner; log: %s"
            proc.pid (read_file proc.log)
        else begin
          (* A child that died is never going to print it. *)
          (match Unix.waitpid [ Unix.WNOHANG ] proc.pid with
          | 0, _ -> ()
          | _, _ ->
              Alcotest.failf "process %d exited before binding; log: %s"
                proc.pid (read_file proc.log)
          | exception Unix.Unix_error _ -> ());
          Thread.delay 0.05;
          poll ()
        end
  in
  poll ()

let reap proc =
  (try Unix.kill proc.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] proc.pid) with Unix.Unix_error _ -> ()

let is_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let test_kill9_midstream () =
  let dir = mkdtemp () in
  let docs_a = Filename.concat dir "docs_a.txt" in
  let docs_b = Filename.concat dir "docs_b.txt" in
  let slice_a = E.slice ~from:0 ~len:4 and slice_b = E.slice ~from:4 ~len:4 in
  write_docs docs_a slice_a;
  write_docs docs_b slice_b;
  let procs = ref [] in
  let spawn args ~log =
    let p = spawn args ~log:(Filename.concat dir log) in
    procs := p :: !procs;
    p
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter reap !procs;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let back_a = spawn [ "serve"; docs_a; "--port"; "0" ] ~log:"a.log" in
      let back_b = spawn [ "serve"; docs_b; "--port"; "0" ] ~log:"b.log" in
      let port_a = wait_port back_a and port_b = wait_port back_b in
      let router =
        spawn
          [
            "serve-router";
            "--backend"; Printf.sprintf "127.0.0.1:%d" port_a;
            "--backend"; Printf.sprintf "127.0.0.1:%d" port_b;
            "--port"; "0";
          ]
          ~log:"router.log"
      in
      let rport = wait_port router in
      (* Healthy sanity: routed == in-process mono, across processes. *)
      let conn = E.connect rport in
      Fun.protect
        ~finally:(fun () -> E.close conn)
        (fun () ->
          let family, alpha, k, terms = List.hd E.queries in
          Alcotest.(check string) "routed matches mono across processes"
            (E.mono_response ~family ~alpha ~k terms)
            (E.request conn (E.search_line (List.hd E.queries)));
          (* Hammer from a second connection while we kill -9 the B
             backend mid-stream. Every answer must be a complete or a
             degraded result — never ERR, never a hang. *)
          let violations = ref [] in
          let hammer () =
            let c = E.connect rport in
            Fun.protect
              ~finally:(fun () -> E.close c)
              (fun () ->
                for i = 0 to 199 do
                  let q = List.nth E.queries (i mod List.length E.queries) in
                  let got = E.request c (E.search_line q) in
                  if
                    not
                      (is_prefix "HITS " got
                      || is_prefix "OK-DEGRADED " got
                      || got = "TIMEOUT")
                  then violations := (i, got) :: !violations
                done)
          in
          let t = Thread.create hammer () in
          Thread.delay 0.2;
          Unix.kill back_b.pid Sys.sigkill;
          ignore (Unix.waitpid [] back_b.pid);
          Thread.join t;
          (match !violations with
          | [] -> ()
          | (i, got) :: _ ->
              Alcotest.failf "%d contract violations, e.g. request %d: %S"
                (List.length !violations) i got);
          (* Steady state after the kill: a *fresh* query (the hammered
             ones are cached from before the kill) must be OK-DEGRADED
             with the exact top-k of the surviving slice. *)
          let family = "win" and alpha = 0.25 and k = 6 in
          let terms = [ "exact:dell"; "exact:partnership" ] in
          let pairs = E.slice_pairs ~base:0 slice_a ~family ~alpha ~k terms in
          Alcotest.(check string) "post-kill answer = survivor oracle"
            (Pj_server.Protocol.ok_degraded_ids ~failed_shards:[ 1 ] pairs)
            (E.request conn
               (Printf.sprintf "SEARCH %s %g %d %s" family alpha k
                  (String.concat " " terms)));
          (* And the router's STATS shows the tier-level story. *)
          let stats = E.request conn "STATS" in
          Alcotest.(check bool) "dead backend reported down" true
            (E.contains stats "backend.1.0.up=0");
          Alcotest.(check bool) "degraded responses counted" true
            (E.int_field stats "degraded" >= 1)))

let suite =
  [ ("cluster: kill -9 one backend mid-stream", `Slow, test_kill9_midstream) ]
