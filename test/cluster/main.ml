let () =
  Alcotest.run "proxjoin cluster"
    [
      ("frame", Test_frame.tests);
      ("cluster_e2e", Test_cluster_e2e.suite);
      ("cluster_proc", Test_cluster_proc.suite);
    ]
