(* The frame codec under abuse: round-trips, then every way a stream
   can lie — truncation at each byte, single-byte corruption, garbage
   prefixes, hostile lengths — mirroring the WAL torn-tail suite. All
   randomness is seeded: failures reproduce. *)

open Pj_frame

let frame kind id payload = { Frame.kind; id; payload }

let check_eq (a : Frame.t) (b : Frame.t) =
  Alcotest.(check bool)
    (Printf.sprintf "frame id=%d round-trips" a.Frame.id)
    true
    (a.Frame.kind = b.Frame.kind && a.Frame.id = b.Frame.id
   && a.Frame.payload = b.Frame.payload)

let decode_one s =
  let pos = ref 0 in
  Frame.decode s ~pos

let test_roundtrip () =
  let rng = Random.State.make [| 0xF4A3E |] in
  let payloads =
    [
      "";
      "PING";
      "SEARCH win 0.2 5 exact:lenovo exact:nba";
      String.make 4096 'x';
      String.init 512 (fun _ -> Char.chr (Random.State.int rng 256));
    ]
  in
  let ids = [ 0; 1; 127; 128; 300_000; (1 lsl 40) + 17 ] in
  List.iter
    (fun kind ->
      List.iter
        (fun id ->
          List.iter
            (fun payload ->
              let f = frame kind id payload in
              match decode_one (Frame.to_string f) with
              | Ok g -> check_eq f g
              | Error _ -> Alcotest.fail "valid frame failed to decode")
            payloads)
        ids)
    [ Frame.Request; Frame.Response; Frame.Error_frame ]

let test_stream_roundtrip () =
  (* Several frames back to back in one buffer decode in order and
     leave [pos] at the end. *)
  let frames =
    List.init 20 (fun i ->
        frame
          (if i mod 2 = 0 then Frame.Request else Frame.Response)
          (i * 7)
          (Printf.sprintf "payload-%d-%s" i (String.make (i * 13) 'y')))
  in
  let buf = Buffer.create 1024 in
  List.iter (fun f -> Frame.encode buf f) frames;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  List.iter
    (fun f ->
      match Frame.decode s ~pos with
      | Ok g -> check_eq f g
      | Error _ -> Alcotest.fail "stream decode failed")
    frames;
  Alcotest.(check int) "stream fully consumed" (String.length s) !pos

let is_error = function Error _ -> true | Ok _ -> false

let test_hostile_headers () =
  let f = frame Frame.Request 42 "SEARCH win 0.2 5 exact:a" in
  let s = Bytes.of_string (Frame.to_string f) in
  (* Wrong sniff byte. *)
  let bad = Bytes.copy s in
  Bytes.set bad 0 'S';
  Alcotest.(check bool) "bad magic byte" true (is_error (decode_one (Bytes.to_string bad)));
  (* Wrong magic letters. *)
  let bad = Bytes.copy s in
  Bytes.set bad 1 'X';
  Alcotest.(check bool) "bad magic" true (is_error (decode_one (Bytes.to_string bad)));
  (* Unsupported version. *)
  let bad = Bytes.copy s in
  Bytes.set bad 3 '\x07';
  Alcotest.(check bool) "bad version" true (is_error (decode_one (Bytes.to_string bad)));
  (* Negative body length: must be Oversized, detected from the header
     alone — no allocation proportional to the claim. *)
  let bad = Bytes.copy s in
  Bytes.set_int32_be bad 4 (-1l);
  (match decode_one (Bytes.to_string bad) with
  | Error (Frame.Oversized n) ->
      Alcotest.(check bool) "negative length reported" true (n < 0)
  | _ -> Alcotest.fail "negative length not rejected as Oversized");
  (* Huge body length. *)
  let bad = Bytes.copy s in
  Bytes.set_int32_be bad 4 0x7FFF_FFFFl;
  (match decode_one (Bytes.to_string bad) with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "huge length not rejected as Oversized")

let test_truncation_everywhere () =
  (* Torn tail: cut a 3-frame stream at every byte boundary. Whatever
     survives must be a prefix of the original frames, the cut frame
     must surface as Truncated (never garbage), and a cut exactly at a
     frame boundary is a clean end of stream. *)
  let frames =
    [
      frame Frame.Request 1 "PING";
      frame Frame.Response 2 (String.make 100 'z');
      frame Frame.Request 3 "STATS";
    ]
  in
  let buf = Buffer.create 256 in
  List.iter (fun f -> Frame.encode buf f) frames;
  let s = Buffer.contents buf in
  let total = String.length s in
  for cut = 0 to total - 1 do
    let sub = String.sub s 0 cut in
    let pos = ref 0 in
    let rec drain acc =
      if !pos = String.length sub then `Clean_end (List.rev acc)
      else
        match Frame.decode sub ~pos with
        | Ok f -> drain (f :: acc)
        | Error e -> `Torn (List.rev acc, e)
    in
    match drain [] with
    | `Clean_end decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "cut %d: clean end only at frame boundary" cut)
          true
          (List.length decoded <= List.length frames)
    | `Torn (decoded, e) ->
        List.iteri (fun i f -> check_eq (List.nth frames i) f) decoded;
        (match e with
        | Frame.Truncated _ -> ()
        | Frame.Corrupt _ | Frame.Oversized _ ->
            Alcotest.fail
              (Printf.sprintf "cut %d: truncation misreported" cut))
  done

let test_corruption_fuzz () =
  (* Flip every single byte of a frame in turn: no flip may decode to
     a different frame (the CRC owns the body, the header checks own
     the rest). A flip may legitimately yield Truncated (length field
     grew) — what it must never do is succeed with altered content. *)
  let f = frame Frame.Response 9000 "HITS 2 0:0.25 5:0.125" in
  let orig = Frame.to_string f in
  for i = 0 to String.length orig - 1 do
    for delta = 1 to 3 do
      let b = Bytes.of_string orig in
      Bytes.set b i (Char.chr ((Char.code orig.[i] + (delta * 85)) land 0xff));
      match decode_one (Bytes.to_string b) with
      | Error _ -> ()
      | Ok g ->
          check_eq f g;
          Alcotest.fail
            (Printf.sprintf "byte %d flip decoded to a different frame" i)
    done
  done

let test_garbage_prefix () =
  let rng = Random.State.make [| 0xBADF00D |] in
  for _ = 1 to 200 do
    let len = 1 + Random.State.int rng 64 in
    let garbage =
      String.init len (fun _ -> Char.chr (Random.State.int rng 256))
    in
    (* Force a non-magic first byte so this is unambiguous garbage. *)
    let garbage =
      if garbage.[0] = Frame.magic_byte then "G" ^ garbage else garbage
    in
    match decode_one garbage with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "garbage decoded as a frame"
  done

let test_wire_over_channels () =
  (* The channel reader sees the same three-frame stream through a
     file, then the same torn/corrupt cases. *)
  let frames =
    [
      frame Frame.Request 11 "SEARCH med 0.1 3 exact:dell";
      frame Frame.Response 11 "HITS 0";
      frame Frame.Request 12 "QUIT";
    ]
  in
  let path = Filename.temp_file "pj_wire" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      List.iter (fun f -> Wire.write oc f) frames;
      close_out oc;
      let ic = open_in_bin path in
      List.iter
        (fun f ->
          match Wire.read ic with
          | Wire.Frame g -> check_eq f g
          | Wire.Closed | Wire.Bad _ -> Alcotest.fail "wire read failed")
        frames;
      (match Wire.read ic with
      | Wire.Closed -> ()
      | _ -> Alcotest.fail "expected clean Closed at EOF");
      close_in ic;
      (* Torn mid-frame through the channel: truncate the file. *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 3));
      close_out oc;
      let ic = open_in_bin path in
      (match Wire.read ic with
      | Wire.Frame g -> check_eq (List.nth frames 0) g
      | _ -> Alcotest.fail "first frame should survive");
      (match Wire.read ic with
      | Wire.Frame g -> check_eq (List.nth frames 1) g
      | _ -> Alcotest.fail "second frame should survive");
      (match Wire.read ic with
      | Wire.Bad (Frame.Truncated _) -> ()
      | _ -> Alcotest.fail "torn tail should read Bad Truncated");
      close_in ic)

let test_max_body_respected () =
  (* A frame bigger than the reader's cap is rejected as Oversized even
     though it is perfectly well-formed. *)
  let f = frame Frame.Request 1 (String.make 5000 'q') in
  let s = Frame.to_string f in
  (match decode_one s with
  | Ok g -> check_eq f g
  | Error _ -> Alcotest.fail "5000-byte frame should decode at default cap");
  let pos = ref 0 in
  match Frame.decode ~max_body:4096 s ~pos with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "cap of 4096 should reject a 5000-byte body"

let tests =
  [
    Alcotest.test_case "frame: round-trip" `Quick test_roundtrip;
    Alcotest.test_case "frame: stream round-trip" `Quick test_stream_roundtrip;
    Alcotest.test_case "frame: hostile headers" `Quick test_hostile_headers;
    Alcotest.test_case "frame: truncation at every byte" `Quick
      test_truncation_everywhere;
    Alcotest.test_case "frame: corruption fuzz" `Quick test_corruption_fuzz;
    Alcotest.test_case "frame: garbage prefix" `Quick test_garbage_prefix;
    Alcotest.test_case "frame: wire over channels" `Quick
      test_wire_over_channels;
    Alcotest.test_case "frame: max_body cap" `Quick test_max_body_respected;
  ]
