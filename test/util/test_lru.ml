open Pj_util

let test_invalid_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity must be >= 1")
    (fun () -> ignore (Lru.create ~capacity:0))

let test_add_find () =
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "b" (Some 2) (Lru.find c "b");
  Alcotest.(check (option int)) "missing" None (Lru.find c "c");
  Alcotest.(check int) "length" 2 (Lru.length c)

let test_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* "a" is the least recently used; inserting a fourth evicts it. *)
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
  Alcotest.(check int) "still at capacity" 3 (Lru.length c);
  Alcotest.(check (list string)) "mru order" [ "d"; "c"; "b" ]
    (List.map fst (Lru.to_list c))

let test_find_refreshes_recency () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* Touching "a" promotes it; "b" becomes the eviction candidate. *)
  ignore (Lru.find c "a");
  Lru.add c "d" 4;
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b")

let test_overwrite_refreshes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "a overwritten" (Some 10) (Lru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check int) "no growth" 2 (Lru.length c)

let test_mem_does_not_touch () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check bool) "mem a" true (Lru.mem c "a");
  (* mem must not promote "a": adding "c" still evicts "a". *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "a evicted despite mem" None (Lru.find c "a")

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  Alcotest.(check (option string)) "only latest" (Some "y") (Lru.find c 2);
  Alcotest.(check (option string)) "evicted" None (Lru.find c 1);
  Lru.remove c 2;
  Alcotest.(check int) "empty after remove" 0 (Lru.length c)

let test_clear () =
  let c = Lru.create ~capacity:8 in
  for i = 1 to 8 do
    Lru.add c i i
  done;
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (option int)) "gone" None (Lru.find c 3);
  Lru.add c 9 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Lru.find c 9)

let test_churn_keeps_capacity () =
  let c = Lru.create ~capacity:16 in
  for i = 1 to 1000 do
    Lru.add c (i mod 37) i
  done;
  Alcotest.(check bool) "bounded" true (Lru.length c <= 16);
  (* The most recent insertion is always present. *)
  Alcotest.(check bool) "latest present" true (Lru.mem c (1000 mod 37))

(* --- model-based property tests ---------------------------------------- *)

(* Reference model: an MRU-first association list bounded by the
   capacity. Every Lru operation must agree with it, and [to_list] must
   reproduce it exactly (recency order included). *)

type op = Add of int * int | Find of int | Remove of int | Mem of int

let pp_op = function
  | Add (k, v) -> Printf.sprintf "add %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Mem k -> Printf.sprintf "mem %d" k

let op_gen =
  QCheck.Gen.(
    let key = int_range 0 7 in
    frequency
      [
        (4, map2 (fun k v -> Add (k, v)) key (int_range 0 99));
        (3, map (fun k -> Find k) key);
        (1, map (fun k -> Remove k) key);
        (1, map (fun k -> Mem k) key);
      ])

let scenario_gen =
  QCheck.Gen.(pair (int_range 1 5) (list_size (int_range 1 60) op_gen))

let scenario_print (cap, ops) =
  Printf.sprintf "capacity %d: %s" cap
    (String.concat "; " (List.map pp_op ops))

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

let truncate cap l =
  List.filteri (fun i _ -> i < cap) l

let model_apply cap model = function
  | Add (k, v) -> truncate cap ((k, v) :: List.remove_assoc k model)
  | Find k ->
      if List.mem_assoc k model then
        (k, List.assoc k model) :: List.remove_assoc k model
      else model
  | Remove k -> List.remove_assoc k model
  | Mem _ -> model

let run_scenario (cap, ops) =
  let c = Lru.create ~capacity:cap in
  let model = ref [] in
  List.for_all
    (fun op ->
      let results_agree =
        match op with
        | Add (k, v) ->
            Lru.add c k v;
            true
        | Find k ->
            let expected =
              if List.mem_assoc k !model then Some (List.assoc k !model)
              else None
            in
            Lru.find c k = expected
        | Remove k ->
            Lru.remove c k;
            true
        | Mem k -> Lru.mem c k = List.mem_assoc k !model
      in
      model := model_apply cap !model op;
      results_agree
      && Lru.to_list c = !model
      && Lru.length c = List.length !model
      && Lru.length c <= cap)
    ops

let test_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"lru: random op sequences match the assoc-list model"
       scenario_arb run_scenario)

let suite =
  [
    test_model;
    ("lru: invalid capacity", `Quick, test_invalid_capacity);
    ("lru: add/find", `Quick, test_add_find);
    ("lru: eviction order", `Quick, test_eviction_order);
    ("lru: find refreshes", `Quick, test_find_refreshes_recency);
    ("lru: overwrite refreshes", `Quick, test_overwrite_refreshes);
    ("lru: mem does not touch", `Quick, test_mem_does_not_touch);
    ("lru: capacity one", `Quick, test_capacity_one);
    ("lru: clear", `Quick, test_clear);
    ("lru: churn", `Quick, test_churn_keeps_capacity);
  ]
