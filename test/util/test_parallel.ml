open Pj_util

let test_matches_sequential () =
  let a = Array.init 1000 (fun i -> i) in
  let f x = (x * 7) + 3 in
  Alcotest.(check (array int)) "same as Array.map" (Array.map f a)
    (Parallel.map_array ~domains:4 f a)

let test_order_preserved () =
  let a = Array.init 257 string_of_int in
  let out = Parallel.map_array ~domains:3 (fun s -> s ^ "!") a in
  Array.iteri
    (fun i v -> Alcotest.(check string) "slot" (string_of_int i ^ "!") v)
    out

let test_degenerate_sizes () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.map_array ~domains:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |]
    (Parallel.map_array ~domains:4 succ [| 1 |]);
  Alcotest.(check (array int)) "fewer items than domains" [| 2; 3 |]
    (Parallel.map_array ~domains:8 succ [| 1; 2 |])

let test_single_domain () =
  let a = Array.init 10 Fun.id in
  Alcotest.(check (array int)) "sequential path" (Array.map succ a)
    (Parallel.map_array ~domains:1 succ a)

let test_exception_propagates () =
  Alcotest.check_raises "exception surfaces" (Failure "boom") (fun () ->
      ignore
        (Parallel.map_array ~domains:2
           (fun x -> if x = 7 then failwith "boom" else x)
           (Array.init 20 Fun.id)))

let test_recommended_positive () =
  Alcotest.(check bool) "at least one" true (Parallel.recommended_domains () >= 1)

let test_domains_env_override () =
  let with_env v f =
    Unix.putenv "PROXJOIN_DOMAINS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "PROXJOIN_DOMAINS" "") f
  in
  with_env "1" (fun () ->
      Alcotest.(check int) "cap 1" 1 (Parallel.recommended_domains ()));
  with_env "0" (fun () ->
      (* Clamped to >= 1, never 0. *)
      Alcotest.(check int) "clamped" 1 (Parallel.recommended_domains ()));
  with_env "-3" (fun () ->
      Alcotest.(check int) "negative clamped" 1 (Parallel.recommended_domains ()));
  with_env " 2 " (fun () ->
      Alcotest.(check bool) "whitespace tolerated" true
        (Parallel.recommended_domains () <= 2));
  with_env "not-a-number" (fun () ->
      (* Garbage falls back to the default cap of 8. *)
      let d = Parallel.recommended_domains () in
      Alcotest.(check bool) "default cap" true (d >= 1 && d <= 8));
  with_env "9999" (fun () ->
      (* A huge cap still bounds by the hardware count. *)
      Alcotest.(check bool) "hardware bound" true
        (Parallel.recommended_domains () <= Domain.recommended_domain_count ()))

let suite =
  [
    ("parallel: matches sequential", `Quick, test_matches_sequential);
    ("parallel: order", `Quick, test_order_preserved);
    ("parallel: degenerate sizes", `Quick, test_degenerate_sizes);
    ("parallel: single domain", `Quick, test_single_domain);
    ("parallel: exceptions", `Quick, test_exception_propagates);
    ("parallel: recommended count", `Quick, test_recommended_positive);
    ("parallel: PROXJOIN_DOMAINS override", `Quick, test_domains_env_override);
  ]
