open Pj_util

let test_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "mean" 0. (Histogram.mean h);
  Alcotest.(check (float 0.)) "max" 0. (Histogram.max_value h);
  Alcotest.(check (float 0.)) "p99" 0. (Histogram.percentile h 99.)

let test_exact_aggregates () =
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ 0.001; 0.002; 0.003; 0.010 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 0.004 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max" 0.010 (Histogram.max_value h)

let check_close msg expected actual =
  (* Bucket growth is 1.15, so estimates sit within 15% above the true
     value (and are clamped to the true max). *)
  if actual < expected *. 0.999 || actual > expected *. 1.16 then
    Alcotest.failf "%s: expected ~%g, got %g" msg expected actual

let test_percentile_accuracy () =
  let h = Histogram.create () in
  (* 1..1000 ms, uniformly. *)
  for i = 1 to 1000 do
    Histogram.observe h (float_of_int i /. 1000.)
  done;
  check_close "p50" 0.5 (Histogram.percentile h 50.);
  check_close "p95" 0.95 (Histogram.percentile h 95.);
  check_close "p99" 0.99 (Histogram.percentile h 99.);
  Alcotest.(check (float 1e-9)) "p100 = max" 1. (Histogram.percentile h 100.)

let test_single_observation () =
  let h = Histogram.create () in
  Histogram.observe h 0.042;
  List.iter
    (fun p -> check_close (Printf.sprintf "p%g" p) 0.042 (Histogram.percentile h p))
    [ 0.; 50.; 99.; 100. ]

let test_outliers_and_garbage () =
  let h = Histogram.create () in
  Histogram.observe h (-5.) (* counts as 0 *);
  Histogram.observe h Float.nan (* counts as 0 *);
  Histogram.observe h 1e-9 (* underflow bucket *);
  Histogram.observe h 1e9 (* overflow bucket *);
  Alcotest.(check int) "all retained" 4 (Histogram.count h);
  Alcotest.(check (float 1e-3)) "max kept exactly" 1e9 (Histogram.max_value h);
  Alcotest.(check (float 1e-3)) "p100 clamps to max" 1e9
    (Histogram.percentile h 100.)

let test_non_finite_observations () =
  (* Regression: [observe h infinity] used to send infinity through
     [int_of_float] (unspecified — lands on min_int) and index the
     bucket array at a negative offset. Non-finite values must land in
     the overflow bucket and keep every aggregate finite. *)
  let h = Histogram.create () in
  List.iter (Histogram.observe h) [ Float.infinity; Float.nan; -1.; 0. ];
  Alcotest.(check int) "all four retained" 4 (Histogram.count h);
  Alcotest.(check bool) "mean finite" true (Float.is_finite (Histogram.mean h));
  Alcotest.(check bool) "max finite" true
    (Float.is_finite (Histogram.max_value h));
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%g finite" p)
        true
        (Float.is_finite (Histogram.percentile h p)))
    [ 0.; 50.; 99.; 100. ];
  (* The infinity dominates: it must be the (finite, overflow-boundary)
     maximum, above everything the nan/-1./0. clamps produced. *)
  Alcotest.(check bool) "overflow boundary is the max" true
    (Histogram.max_value h > 0.);
  Alcotest.(check (float 1e-9)) "p100 = that boundary"
    (Histogram.max_value h)
    (Histogram.percentile h 100.)

let test_invalid_percentile () =
  let h = Histogram.create () in
  Alcotest.check_raises "p > 100"
    (Invalid_argument "Histogram.percentile: p outside [0,100]") (fun () ->
      ignore (Histogram.percentile h 101.))

let test_merge_and_reset () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 100 do
    Histogram.observe a (float_of_int i /. 100.)
  done;
  for i = 101 to 200 do
    Histogram.observe b (float_of_int i /. 100.)
  done;
  Histogram.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged count" 200 (Histogram.count a);
  check_close "merged p50" 1.0 (Histogram.percentile a 50.);
  Alcotest.(check (float 1e-9)) "merged max" 2. (Histogram.max_value a);
  Histogram.reset a;
  Alcotest.(check int) "reset" 0 (Histogram.count a);
  Alcotest.(check (float 0.)) "reset max" 0. (Histogram.max_value a)

let suite =
  [
    ("histogram: empty", `Quick, test_empty);
    ("histogram: aggregates", `Quick, test_exact_aggregates);
    ("histogram: percentile accuracy", `Quick, test_percentile_accuracy);
    ("histogram: single observation", `Quick, test_single_observation);
    ("histogram: outliers", `Quick, test_outliers_and_garbage);
    ("histogram: non-finite observations", `Quick, test_non_finite_observations);
    ("histogram: invalid p", `Quick, test_invalid_percentile);
    ("histogram: merge/reset", `Quick, test_merge_and_reset);
  ]
