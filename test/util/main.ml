let () =
  Alcotest.run "proxjoin.util"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("stats", Test_stats.suite);
      ("vec", Test_vec.suite);
      ("heap", Test_heap.suite);
      ("lru", Test_lru.suite);
      ("histogram", Test_histogram.suite);
      ("subset", Test_subset.suite);
      ("timing", Test_timing.suite);
      ("parallel", Test_parallel.suite);
      ("failpoint", Test_failpoint.suite);
    ]
