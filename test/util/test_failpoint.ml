open Pj_util

(* Every test disarms on exit so later suites (and reruns) start from
   the zero-cost disabled state. *)
let with_failpoints f =
  Fun.protect ~finally:(fun () -> Failpoint.clear ()) f

let test_disabled_is_noop () =
  Failpoint.clear ();
  Alcotest.(check bool) "inactive" false (Failpoint.active ());
  Failpoint.hit "nowhere";
  Failpoint.hit "storage.save";
  Alcotest.(check int) "nothing fired" 0 (Failpoint.fired_total ())

let test_parse_grammar () =
  let ok spec = match Failpoint.parse spec with Ok rs -> rs | Error e -> Alcotest.fail e in
  (match ok "a=error,b=delay:250@0.5,c=panic@0.1" with
  | [ a; b; c ] ->
      Alcotest.(check string) "site a" "a" a.Failpoint.site;
      Alcotest.(check bool) "a is fail" true (a.Failpoint.action = Failpoint.Fail);
      Alcotest.(check (float 1e-9)) "a prob" 1.0 a.Failpoint.prob;
      Alcotest.(check bool) "b is 0.25s delay" true
        (b.Failpoint.action = Failpoint.Delay 0.25);
      Alcotest.(check (float 1e-9)) "b prob" 0.5 b.Failpoint.prob;
      Alcotest.(check bool) "c is panic" true (c.Failpoint.action = Failpoint.Panic);
      Alcotest.(check (float 1e-9)) "c prob" 0.1 c.Failpoint.prob
  | rs -> Alcotest.failf "expected 3 rules, got %d" (List.length rs));
  Alcotest.(check int) "empty spec" 0 (List.length (ok ""));
  Alcotest.(check int) "spaces tolerated" 2
    (List.length (ok " a=error , b=panic "));
  let fails spec =
    match Failpoint.parse spec with
    | Ok _ -> Alcotest.failf "spec %S should not parse" spec
    | Error msg -> Alcotest.(check bool) "error names rule" true (String.length msg > 0)
  in
  fails "a";
  fails "=error";
  fails "a=explode";
  fails "a=delay:x";
  fails "a=delay:-5";
  fails "a=error@0";
  fails "a=error@1.5";
  fails "a=error@nan"

let test_fail_and_panic_raise () =
  with_failpoints (fun () ->
      Failpoint.configure
        [
          { Failpoint.site = "x"; action = Failpoint.Fail; prob = 1.0 };
          { Failpoint.site = "y"; action = Failpoint.Panic; prob = 1.0 };
        ];
      Alcotest.check_raises "fail raises Injected" (Failpoint.Injected "x")
        (fun () -> Failpoint.hit "x");
      Alcotest.check_raises "panic raises Panicked" (Failpoint.Panicked "y")
        (fun () -> Failpoint.hit "y");
      Failpoint.hit "z" (* unarmed site is untouched *);
      Alcotest.(check int) "x fired once" 1 (Failpoint.fired "x");
      Alcotest.(check int) "two total" 2 (Failpoint.fired_total ()))

let test_delay_sleeps () =
  with_failpoints (fun () ->
      Failpoint.configure
        [ { Failpoint.site = "slow"; action = Failpoint.Delay 0.05; prob = 1.0 } ];
      let t0 = Timing.monotonic_now () in
      Failpoint.hit "slow";
      let dt = Timing.monotonic_now () -. t0 in
      Alcotest.(check bool) "slept >= 40ms" true (dt >= 0.04))

let test_prefix_wildcard () =
  with_failpoints (fun () ->
      Failpoint.configure
        [
          { Failpoint.site = "shard.*"; action = Failpoint.Fail; prob = 1.0 };
          { Failpoint.site = "shard.1"; action = Failpoint.Delay 0.0; prob = 1.0 };
        ];
      Alcotest.check_raises "wildcard matches" (Failpoint.Injected "shard.0")
        (fun () -> Failpoint.hit "shard.0");
      (* Exact rule overrides the wildcard: shard.1 only delays. *)
      Failpoint.hit "shard.1";
      Alcotest.(check int) "exact rule fired" 1 (Failpoint.fired "shard.1");
      Failpoint.hit "other.site";
      Alcotest.(check int) "unrelated site untouched" 0 (Failpoint.fired "other.site"))

let test_probability_deterministic () =
  let run seed =
    with_failpoints (fun () ->
        Failpoint.configure ~seed
          [ { Failpoint.site = "p"; action = Failpoint.Fail; prob = 0.3 } ];
        List.init 200 (fun _ ->
            match Failpoint.hit "p" with
            | () -> false
            | exception Failpoint.Injected _ -> true))
  in
  let a = run 7 and b = run 7 and c = run 8 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c);
  let fired l = List.length (List.filter Fun.id l) in
  (* 200 draws at p=0.3: both tails astronomically unlikely. *)
  Alcotest.(check bool) "rate plausible" true (fired a > 20 && fired a < 120)

let test_arm_and_env () =
  with_failpoints (fun () ->
      Failpoint.arm "one" Failpoint.Fail;
      Alcotest.(check bool) "armed" true (Failpoint.active ());
      Failpoint.arm ~prob:1.0 "one" (Failpoint.Delay 0.0) (* replace in place *);
      Failpoint.hit "one";
      Alcotest.(check int) "replacement fired" 1 (Failpoint.fired "one"));
  Alcotest.(check bool) "cleared" false (Failpoint.active ());
  (* init_from_env without the variable set is a no-op Ok. *)
  Unix.putenv "PROXJOIN_FAILPOINTS" "";
  (match Failpoint.init_from_env () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Unix.putenv "PROXJOIN_FAILPOINTS" "a=notanaction";
  (match Failpoint.init_from_env () with
  | Ok () -> Alcotest.fail "bad spec must be rejected"
  | Error _ -> ());
  Unix.putenv "PROXJOIN_FAILPOINTS" "a=error@0.5";
  with_failpoints (fun () ->
      match Failpoint.init_from_env () with
      | Ok () -> Alcotest.(check bool) "env armed" true (Failpoint.active ())
      | Error e -> Alcotest.fail e);
  Unix.putenv "PROXJOIN_FAILPOINTS" ""

let suite =
  [
    ("failpoint: disabled is a no-op", `Quick, test_disabled_is_noop);
    ("failpoint: grammar", `Quick, test_parse_grammar);
    ("failpoint: fail and panic raise", `Quick, test_fail_and_panic_raise);
    ("failpoint: delay sleeps", `Quick, test_delay_sleeps);
    ("failpoint: prefix wildcard", `Quick, test_prefix_wildcard);
    ("failpoint: seeded determinism", `Quick, test_probability_deterministic);
    ("failpoint: arm/env", `Quick, test_arm_and_env);
  ]
