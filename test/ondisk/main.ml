let () =
  Alcotest.run "proxjoin.ondisk"
    [
      ("codec", Test_codec.suite);
      ("mapped", Test_mapped.suite);
      ("merge_splice", Test_merge_splice.suite);
    ]
