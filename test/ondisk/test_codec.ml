(* Property tests of the v4 block codec: delta+varint round trips,
   impact quantization bounds, skip-table navigation. *)

open Pj_ondisk

(* --- generators -------------------------------------------------------- *)

(* A sorted postings array: random positive doc-id gaps (occasionally
   huge, up to the u32 ceiling) and random position lists. Sizes cross
   the 128-doc block boundary so multi-block lists are routine. *)
let postings_gen =
  QCheck.Gen.(
    let posting_positions =
      list_size (int_range 1 6) (int_range 0 5_000) >|= fun l ->
      Array.of_list (List.sort_uniq compare l)
    in
    let* df = oneof [ int_range 0 4; int_range 120 140; int_range 250 300 ] in
    let* gaps =
      list_repeat df (oneof [ int_range 1 3; int_range 1 10_000 ])
    in
    let* positions = list_repeat df posting_positions in
    let doc = ref (-1) in
    return
      (Array.of_list
         (List.map2
            (fun gap positions ->
              doc := !doc + gap;
              Pj_index.Posting.make ~doc_id:!doc ~positions)
            gaps positions)))

let postings_print posts =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun p ->
            Printf.sprintf "%d(tf %d)" p.Pj_index.Posting.doc_id
              (Array.length p.Pj_index.Posting.positions))
          posts))

let postings_arb = QCheck.make ~print:postings_print postings_gen

(* Encode into a buffer and hand back a reader as if the blob had been
   mapped from disk (a bigstring copy of the encoded bytes). *)
let reader_of posts =
  let buf = Buffer.create 256 in
  Codec.encode buf posts;
  let s = Buffer.contents buf in
  let big =
    Bigarray.Array1.init Bigarray.char Bigarray.c_layout (String.length s)
      (String.get s)
  in
  { Codec.buf = big; blob = 0; df = Array.length posts }

let decode_all r =
  Array.of_list (Pj_index.Posting_list.to_list (Codec.decode r))

let posting_equal a b =
  a.Pj_index.Posting.doc_id = b.Pj_index.Posting.doc_id
  && a.Pj_index.Posting.positions = b.Pj_index.Posting.positions

(* --- round trips ------------------------------------------------------- *)

let roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"encode/decode round trip" postings_arb
       (fun posts ->
         let back = decode_all (reader_of posts) in
         Array.length back = Array.length posts
         && Array.for_all2 posting_equal posts back))

let test_empty_list () =
  let r = reader_of [||] in
  Alcotest.(check int) "no blocks" 0 (Codec.n_blocks ~df:0);
  Alcotest.(check int) "decodes empty" 0 (Array.length (decode_all r));
  let c = Codec.cursor r in
  Alcotest.(check int) "cursor exhausted" (-1)
    (Pj_index.Posting_list.current_doc c);
  Alcotest.(check (float 0.)) "block max 0" 0.
    (Pj_index.Posting_list.block_max_score c)

let test_single_posting_blocks () =
  (* One document exactly fills the degenerate single-entry block. *)
  List.iter
    (fun doc_id ->
      let posts = [| Pj_index.Posting.make ~doc_id ~positions:[| 0; 7 |] |] in
      let back = decode_all (reader_of posts) in
      Alcotest.(check int) "df" 1 (Array.length back);
      Alcotest.(check bool) "posting" true (posting_equal posts.(0) back.(0)))
    [ 0; 1; 127; 128; 0xFFFFFFFF ]

let test_u32_ceiling_enforced () =
  let posts =
    [| Pj_index.Posting.make ~doc_id:0x1_0000_0000 ~positions:[| 0 |] |]
  in
  Alcotest.check_raises "doc id too large"
    (Invalid_argument "Ondisk.Codec.encode: doc id exceeds u32") (fun () ->
      Codec.encode (Buffer.create 16) posts)

let test_unsorted_rejected () =
  let posts =
    [|
      Pj_index.Posting.make ~doc_id:5 ~positions:[| 0 |];
      Pj_index.Posting.make ~doc_id:5 ~positions:[| 1 |];
    |]
  in
  Alcotest.check_raises "duplicate doc id"
    (Invalid_argument "Ondisk.Codec.encode: doc ids not strictly increasing")
    (fun () -> Codec.encode (Buffer.create 16) posts)

(* Block boundaries: exactly block_size, one less, one more. *)
let test_block_boundaries () =
  List.iter
    (fun df ->
      let posts =
        Array.init df (fun i ->
            Pj_index.Posting.make ~doc_id:(i * 3) ~positions:[| i |])
      in
      let r = reader_of posts in
      Alcotest.(check int)
        (Printf.sprintf "n_blocks of %d" df)
        ((df + Codec.block_size - 1) / Codec.block_size)
        (Codec.n_blocks ~df);
      let back = decode_all r in
      Alcotest.(check bool)
        (Printf.sprintf "round trip at df %d" df)
        true
        (Array.for_all2 posting_equal posts back))
    [ Codec.block_size - 1; Codec.block_size; Codec.block_size + 1; 2 * Codec.block_size ]

(* --- quantization ------------------------------------------------------ *)

let quantization_error =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000
       ~name:"quantize error within declared bound" QCheck.(float_range 0. 1.)
       (fun v ->
         Float.abs (Codec.dequantize (Codec.quantize v) -. v)
         <= Codec.quantization_error_bound +. 1e-12))

let quantize_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"quantize is monotone"
       QCheck.(pair (float_range 0. 1.) (float_range 0. 1.))
       (fun (a, b) ->
         let a, b = (Float.min a b, Float.max a b) in
         Codec.quantize a <= Codec.quantize b
         && Codec.quantize_up a <= Codec.quantize_up b))

let quantize_up_dominates =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000
       ~name:"dequantize (quantize_up v) >= v (lossless block bounds)"
       QCheck.(float_range 0. 1.)
       (fun v -> Codec.dequantize (Codec.quantize_up v) >= v))

let test_impact_monotone () =
  for tf = 0 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "impact %d < impact %d" tf (tf + 1))
      true
      (Pj_index.Posting_list.impact ~tf
      < Pj_index.Posting_list.impact ~tf:(tf + 1))
  done;
  Alcotest.(check bool) "impact below ceiling" true
    (Pj_index.Posting_list.impact ~tf:1_000_000 < 1.)

(* The scorer-facing tolerance: a decoded per-posting impact is within
   the declared bound of the true impact, for every tf. *)
let test_quantized_impact_bound () =
  for tf = 0 to 2000 do
    let v = Pj_index.Posting_list.impact ~tf in
    let err = Float.abs (Codec.dequantize (Codec.quantize v) -. v) in
    if err > Codec.quantization_error_bound +. 1e-12 then
      Alcotest.failf "tf %d: error %g above bound %g" tf err
        Codec.quantization_error_bound
  done

(* --- cursor navigation ------------------------------------------------- *)

(* The codec cursor must agree with the in-memory array cursor under
   an arbitrary interleaving of next and (monotone) seek. *)
let cursor_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"codec cursor = array cursor"
       QCheck.(pair postings_arb (small_list (int_bound 30)))
       (fun (posts, steps) ->
         let r = reader_of posts in
         let mem =
           Pj_index.Posting_list.cursor
             (Pj_index.Posting_list.of_postings (Array.to_list posts))
         in
         let disk = Codec.cursor r in
         let ok = ref true in
         let check_here () =
           if
             Pj_index.Posting_list.current_doc mem
             <> Pj_index.Posting_list.current_doc disk
           then ok := false;
           match
             ( Pj_index.Posting_list.current mem,
               Pj_index.Posting_list.current disk )
           with
           | None, None -> ()
           | Some a, Some b when posting_equal a b -> ()
           | _ -> ok := false
         in
         check_here ();
         List.iter
           (fun step ->
             if step mod 3 = 0 then begin
               Pj_index.Posting_list.next mem;
               Pj_index.Posting_list.next disk
             end
             else begin
               let target = Pj_index.Posting_list.current_doc mem + step in
               Pj_index.Posting_list.seek mem target;
               Pj_index.Posting_list.seek disk target
             end;
             check_here ())
           steps;
         !ok))

(* Block-max metadata: at every cursor position the decoded ceiling
   dominates the true max impact of the current block, and
   block_last_doc names that block's final document. *)
let block_max_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"block max dominates true block max"
       postings_arb (fun posts ->
         QCheck.assume (Array.length posts > 0);
         let r = reader_of posts in
         let c = Codec.cursor r in
         let ok = ref true in
         let visited = ref 0 in
         while Pj_index.Posting_list.current_doc c >= 0 do
           let i = !visited in
           let block = i / Codec.block_size in
           let lo = block * Codec.block_size
           and hi =
             Stdlib.min (Array.length posts) ((block + 1) * Codec.block_size)
           in
           let true_max = ref 0. in
           for j = lo to hi - 1 do
             true_max :=
               Float.max !true_max
                 (Pj_index.Posting_list.impact
                    ~tf:(Array.length posts.(j).Pj_index.Posting.positions))
           done;
           if Pj_index.Posting_list.block_max_score c < !true_max then
             ok := false;
           if
             Pj_index.Posting_list.block_last_doc c
             <> posts.(hi - 1).Pj_index.Posting.doc_id
           then ok := false;
           incr visited;
           Pj_index.Posting_list.next c
         done;
         !ok && !visited = Array.length posts))

let count_in_range_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"count_in_range = naive count"
       QCheck.(pair postings_arb (pair (int_bound 60_000) (int_bound 60_000)))
       (fun (posts, (a, b)) ->
         let lo, hi = (Stdlib.min a b, Stdlib.max a b) in
         let r = reader_of posts in
         let naive =
           Array.fold_left
             (fun acc p ->
               if p.Pj_index.Posting.doc_id >= lo && p.Pj_index.Posting.doc_id < hi
               then acc + 1
               else acc)
             0 posts
         in
         Codec.count_in_range r ~lo ~hi = naive))

let range_cursor_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"cursor_in_range visits exactly the range"
       QCheck.(pair postings_arb (pair (int_bound 60_000) (int_bound 60_000)))
       (fun (posts, (a, b)) ->
         let lo, hi = (Stdlib.min a b, Stdlib.max a b) in
         let r = reader_of posts in
         let c = Codec.cursor_in_range r ~lo ~hi in
         let expect =
           Array.to_list posts
           |> List.filter (fun p ->
                  p.Pj_index.Posting.doc_id >= lo
                  && p.Pj_index.Posting.doc_id < hi)
         in
         let got = ref [] in
         while Pj_index.Posting_list.current_doc c >= 0 do
           (match Pj_index.Posting_list.current c with
           | Some p -> got := p :: !got
           | None -> ());
           Pj_index.Posting_list.next c
         done;
         let got = List.rev !got in
         List.length got = List.length expect
         && List.for_all2 posting_equal got expect))

(* Admissibility of the range-restricted view's block bounds, the
   shard-boundary case: at every cursor position the reported ceiling
   must dominate the true max impact of the postings {e visible} in the
   current block (never under-report — losslessness of block-max
   skips), and must not exceed the round-up quantization of that
   visible maximum (a straddling block's ceiling may not leak from
   postings the range masks — the bound a shard bound actually
   deserves). *)
let range_block_max_admissible =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"cursor_in_range block max: admissible and masked-tight"
       QCheck.(pair postings_arb (pair (int_bound 60_000) (int_bound 60_000)))
       (fun (posts, (a, b)) ->
         let lo, hi = (Stdlib.min a b, Stdlib.max a b) in
         let r = reader_of posts in
         let c = Codec.cursor_in_range r ~lo ~hi in
         let index_of doc =
           let i = ref (-1) in
           Array.iteri
             (fun j p -> if p.Pj_index.Posting.doc_id = doc then i := j)
             posts;
           !i
         in
         let ok = ref true in
         while Pj_index.Posting_list.current_doc c >= 0 do
           let d = Pj_index.Posting_list.current_doc c in
           let block = index_of d / Codec.block_size in
           let blo = block * Codec.block_size
           and bhi =
             Stdlib.min (Array.length posts) ((block + 1) * Codec.block_size)
           in
           let visible_max = ref 0. in
           for j = blo to bhi - 1 do
             let doc = posts.(j).Pj_index.Posting.doc_id in
             if doc >= lo && doc < hi then
               visible_max :=
                 Float.max !visible_max
                   (Pj_index.Posting_list.impact
                      ~tf:(Array.length posts.(j).Pj_index.Posting.positions))
           done;
           let bound = Pj_index.Posting_list.block_max_score c in
           if bound < !visible_max then ok := false;
           if bound > Codec.dequantize (Codec.quantize_up !visible_max) +. 1e-12
           then ok := false;
           Pj_index.Posting_list.next c
         done;
         !ok))

let check_blob_accepts =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"check_blob accepts every encoding"
       postings_arb (fun posts ->
         Codec.check_blob (reader_of posts);
         true))

let suite =
  [
    roundtrip;
    ("codec: empty list", `Quick, test_empty_list);
    ("codec: single posting blocks", `Quick, test_single_posting_blocks);
    ("codec: u32 doc-id ceiling", `Quick, test_u32_ceiling_enforced);
    ("codec: unsorted rejected", `Quick, test_unsorted_rejected);
    ("codec: block boundaries", `Quick, test_block_boundaries);
    quantization_error;
    quantize_monotone;
    quantize_up_dominates;
    ("codec: impact monotone", `Quick, test_impact_monotone);
    ("codec: quantized impact bound", `Quick, test_quantized_impact_bound);
    cursor_agrees;
    block_max_sound;
    count_in_range_agrees;
    range_cursor_agrees;
    range_block_max_admissible;
    check_blob_accepts;
  ]
