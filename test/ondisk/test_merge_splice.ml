(* Splice merges across storage layouts: [Inverted_index.concat_adjacent]
   over any heap × mmap pairing of two adjacent document ranges must
   (a) succeed — the on-disk providers now enumerate their terms via
   the dictionary + [Codec.decode], so no pairing forces the
   re-tokenization fallback — and (b) produce postings byte-identical
   to a from-scratch [build_docs] over the union range, tombstone
   filter included. *)

open Pj_ondisk

let alphabet = [| "aa"; "bb"; "cc"; "dd"; "ee"; "ff" |]

let random_docs rng n =
  Array.init n (fun _ ->
      Array.init
        (1 + Pj_util.Prng.int rng 10)
        (fun _ -> Pj_util.Prng.choose rng alphabet))

let with_seg_file f =
  let path = Filename.temp_file "proxjoin_splice" ".pjsg" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

(* An mmap-backed index over documents [pos, pos+len) of [corpus]: a
   PJSG v2 segment written to a temp file and served off its map —
   exactly a live index's sealed-segment searcher. *)
let mmap_range corpus ~pos ~len path =
  let vocab = Pj_index.Corpus.vocab corpus in
  let words =
    Array.map
      (fun (d : Pj_text.Document.t) ->
        Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens)
      (Pj_index.Corpus.docs_slice corpus ~pos ~len)
  in
  Segment_codec.write ~failpoint:"test.splice" path ~base:pos ~docs:words
    ~dead:[];
  Segment_codec.index (Segment_codec.open_file path) corpus

let heap_range corpus ~pos ~len =
  Pj_index.Inverted_index.build_docs corpus
    (Pj_index.Corpus.docs_slice corpus ~pos ~len)

(* Byte-identity of two indexes over the same corpus: same postings
   (doc ids and positions) for every vocabulary token. *)
let indexes_equal a b =
  let vocab_size =
    Pj_text.Vocab.size (Pj_index.Corpus.vocab (Pj_index.Inverted_index.corpus a))
  in
  let ok = ref true in
  for tok = 0 to vocab_size - 1 do
    let pa = Pj_index.Posting_list.to_list (Pj_index.Inverted_index.postings a tok)
    and pb = Pj_index.Posting_list.to_list (Pj_index.Inverted_index.postings b tok) in
    if pa <> pb then ok := false
  done;
  !ok

let check_pair ~ctx corpus ~cut ~n ~skip left right =
  let reference =
    Pj_index.Inverted_index.build_docs ?skip corpus
      (Pj_index.Corpus.docs_slice corpus ~pos:0 ~len:n)
  in
  match Pj_index.Inverted_index.concat_adjacent ?skip left right with
  | None -> Alcotest.failf "%s (cut %d): concat_adjacent declined" ctx cut
  | Some merged ->
      if not (indexes_equal merged reference) then
        Alcotest.failf "%s (cut %d): splice differs from rebuild" ctx cut

let test_heap_mmap_pairs () =
  let rng = Pj_util.Prng.create 4242 in
  for trial = 1 to 8 do
    let n = 20 + Pj_util.Prng.int rng 300 in
    let corpus = Pj_index.Corpus.create () in
    Array.iter
      (fun d -> ignore (Pj_index.Corpus.add_tokens corpus d))
      (random_docs rng n);
    let cut = 1 + Pj_util.Prng.int rng (n - 1) in
    (* Every other doc of one trial in three dies, so the [skip] purge
       runs through the spliced mmap postings too. *)
    let skip =
      if trial mod 3 = 0 then Some (fun id -> id mod 2 = 0) else None
    in
    with_seg_file (fun left_path ->
        with_seg_file (fun right_path ->
            let heap_l = heap_range corpus ~pos:0 ~len:cut
            and heap_r = heap_range corpus ~pos:cut ~len:(n - cut)
            and mmap_l = mmap_range corpus ~pos:0 ~len:cut left_path
            and mmap_r = mmap_range corpus ~pos:cut ~len:(n - cut) right_path in
            check_pair ~ctx:"heap+mmap" corpus ~cut ~n ~skip heap_l mmap_r;
            check_pair ~ctx:"mmap+heap" corpus ~cut ~n ~skip mmap_l heap_r;
            check_pair ~ctx:"mmap+mmap" corpus ~cut ~n ~skip mmap_l mmap_r;
            check_pair ~ctx:"heap+heap" corpus ~cut ~n ~skip heap_l heap_r))
  done

(* The compacted v4 whole-corpus index enumerates too (its provider is
   the other on-disk layout a merge can meet): concat of an empty heap
   prefix with the full mapped index must reproduce every list. *)
let test_mapped_index_enumerates () =
  let rng = Pj_util.Prng.create 99 in
  let corpus = Pj_index.Corpus.create () in
  Array.iter
    (fun d -> ignore (Pj_index.Corpus.add_tokens corpus d))
    (random_docs rng 150);
  let idx = Pj_index.Inverted_index.build corpus in
  let path = Filename.temp_file "proxjoin_splice" ".pjx4" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      Writer.write idx path;
      let mapped = Mapped_index.index (Mapped_index.open_file path) in
      let empty_prefix = heap_range corpus ~pos:0 ~len:0 in
      match Pj_index.Inverted_index.concat_adjacent empty_prefix mapped with
      | None -> Alcotest.fail "mapped full_provider cannot enumerate"
      | Some merged ->
          if not (indexes_equal merged idx) then
            Alcotest.fail "mapped enumeration differs from heap build")

let suite =
  [
    ("splice = rebuild for every heap/mmap pairing", `Quick, test_heap_mmap_pairs);
    ("compacted v4 index enumerates its terms", `Quick, test_mapped_index_enumerates);
  ]
