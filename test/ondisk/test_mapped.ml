(* The mmap-backed v4 reader against the in-memory index: identical
   structure, identical search results (hits and matchsets), plus
   corruption handling and the v1..v4 migration matrix. *)

open Pj_ondisk

let temp_path () = Filename.temp_file "proxjoin_ondisk" ".pjx4"

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

let alphabet = [| "aa"; "bb"; "cc"; "dd"; "ee" |]

let corpus_of docs =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun tokens ->
      ignore (Pj_index.Corpus.add_tokens corpus (Array.of_list tokens)))
    docs;
  corpus

let corpus_gen =
  QCheck.Gen.(
    let doc = list_size (int_range 0 12) (oneofa alphabet) in
    list_size (int_range 1 12) doc)

let corpus_print docs =
  String.concat " | " (List.map (String.concat " ") docs)

let corpus_arb = QCheck.make ~print:corpus_print corpus_gen

(* Two terms, one with expansions — exercises multi-form term cursors
   and matchset payloads. *)
let query =
  Pj_matching.Query.make "q"
    [
      Pj_matching.Matcher.exact ~score:0.9 "aa";
      Pj_matching.Matcher.of_table ~name:"b-or-c" [ ("bb", 0.7); ("cc", 0.4) ];
    ]

let families =
  [
    ("win", Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3));
    ("med", Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.3));
    ("max", Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.3));
  ]

let hit_equal (a : Pj_engine.Searcher.hit) (b : Pj_engine.Searcher.hit) =
  (* Byte-identical: same doc, same float score bits, same matchset
     (locations, scores, payloads). *)
  a.Pj_engine.Searcher.doc_id = b.Pj_engine.Searcher.doc_id
  && Int64.equal
       (Int64.bits_of_float a.Pj_engine.Searcher.score)
       (Int64.bits_of_float b.Pj_engine.Searcher.score)
  && a.Pj_engine.Searcher.matchset = b.Pj_engine.Searcher.matchset

let hits_equal a b = List.length a = List.length b && List.for_all2 hit_equal a b

let pp_hits hits =
  String.concat ","
    (List.map
       (fun h ->
         Printf.sprintf "%d:%.17g" h.Pj_engine.Searcher.doc_id
           h.Pj_engine.Searcher.score)
       hits)

(* The full acceptance matrix for one corpus: every scoring family ×
   k ∈ {1, 10, 1000} × prune on/off, on the monolithic and the sharded
   search paths. Returns an error description or None. *)
let compare_all_searches ~mem_index ~mapped =
  let mem_searcher = Pj_engine.Searcher.create mem_index in
  let disk_searcher = Pj_engine.Searcher.create (Mapped_index.index mapped) in
  let n = Pj_index.Corpus.size (Pj_index.Inverted_index.corpus mem_index) in
  let shards = Stdlib.max 1 (Stdlib.min 3 n) in
  let mem_sharded =
    Pj_engine.Shard_searcher.create
      (Pj_index.Sharded_index.build ~shards
         (Pj_index.Inverted_index.corpus mem_index))
  in
  let disk_sharded =
    Pj_engine.Shard_searcher.create (Mapped_index.sharded mapped)
  in
  let failure = ref None in
  List.iter
    (fun (fname, scoring) ->
      List.iter
        (fun k ->
          List.iter
            (fun prune ->
              (* The reference is the exhaustive in-memory traversal;
                 every other leg keeps block-max pruning on (the
                 default), so the matrix doubles as the on-disk
                 blockmax-losslessness oracle. *)
              let mem_hits =
                Pj_engine.Searcher.search ~k ~prune ~blockmax:false
                  mem_searcher scoring query
              in
              let disk_hits =
                Pj_engine.Searcher.search ~k ~prune disk_searcher scoring query
              in
              if not (hits_equal mem_hits disk_hits) then
                failure :=
                  Some
                    (Printf.sprintf "%s k=%d prune=%b: mem %s / mmap %s" fname
                       k prune (pp_hits mem_hits) (pp_hits disk_hits));
              let disk_shard_hits =
                Pj_engine.Shard_searcher.search ~k ~prune disk_sharded scoring
                  query
              in
              if not (hits_equal mem_hits disk_shard_hits) then
                failure :=
                  Some
                    (Printf.sprintf
                       "%s k=%d prune=%b: mem %s / mmap sharded %s" fname k
                       prune (pp_hits mem_hits) (pp_hits disk_shard_hits));
              let mem_shard_hits =
                Pj_engine.Shard_searcher.search ~k ~prune mem_sharded scoring
                  query
              in
              if not (hits_equal mem_hits mem_shard_hits) then
                failure :=
                  Some
                    (Printf.sprintf "%s k=%d prune=%b: mem sharded differs"
                       fname k prune))
            [ true; false ])
        [ 1; 10; 1000 ])
    families;
  !failure

(* A deliberately uneven 3-way layout when there are enough docs. *)
let shard_layout corpus =
  let n = Pj_index.Corpus.size corpus in
  if n < 3 then [| n |]
  else [| 1; (n - 1) / 2; n - 1 - ((n - 1) / 2) |]

let search_matrix_equal =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"mmap search = in-memory search (families × k × prune × shards)"
       corpus_arb
       (fun docs ->
         let corpus = corpus_of docs in
         let mem_index = Pj_index.Inverted_index.build corpus in
         with_temp (fun path ->
             Writer.write ~counts:(shard_layout corpus) mem_index path;
             let mapped = Mapped_index.open_file path in
             match compare_all_searches ~mem_index ~mapped with
             | None -> true
             | Some msg -> QCheck.Test.fail_report msg)))

(* --- structural equivalence -------------------------------------------- *)

let sample_docs =
  [
    [ "aa"; "bb"; "cc"; "aa" ];
    [];
    [ "dd"; "dd"; "dd"; "dd"; "dd" ];
    [ "ee"; "aa" ];
    [ "bb" ];
    [ "cc"; "cc"; "aa"; "bb"; "ee"; "ee"; "ee" ];
  ]

let test_structure_round_trip () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  with_temp (fun path ->
      Writer.write idx path;
      let mapped = Mapped_index.open_file path in
      let midx = Mapped_index.index mapped in
      let vocab = Pj_index.Corpus.vocab corpus in
      let mcorpus = Mapped_index.corpus mapped in
      Alcotest.(check int) "corpus size" (Pj_index.Corpus.size corpus)
        (Pj_index.Corpus.size mcorpus);
      Alcotest.(check int) "total tokens"
        (Pj_index.Corpus.total_tokens corpus)
        (Pj_index.Corpus.total_tokens mcorpus);
      for i = 0 to Pj_index.Corpus.size corpus - 1 do
        let a = Pj_index.Corpus.document corpus i
        and b = Pj_index.Corpus.document mcorpus i in
        Alcotest.(check int) "doc id" a.Pj_text.Document.id b.Pj_text.Document.id;
        Alcotest.(check (array int)) "doc tokens" a.Pj_text.Document.tokens
          b.Pj_text.Document.tokens
      done;
      for tok = 0 to Pj_text.Vocab.size vocab - 1 do
        let w = Pj_text.Vocab.word vocab tok in
        Alcotest.(check int) ("df " ^ w)
          (Pj_index.Inverted_index.document_frequency idx tok)
          (Pj_index.Inverted_index.document_frequency midx tok);
        Alcotest.(check bool) ("postings " ^ w) true
          (Pj_index.Posting_list.to_list (Pj_index.Inverted_index.postings idx tok)
          = Pj_index.Posting_list.to_list
              (Pj_index.Inverted_index.postings midx tok));
        for doc = 0 to Pj_index.Corpus.size corpus - 1 do
          Alcotest.(check (array int))
            (Printf.sprintf "positions %s in %d" w doc)
            (Pj_index.Inverted_index.positions_in idx ~token:tok ~doc_id:doc)
            (Pj_index.Inverted_index.positions_in midx ~token:tok ~doc_id:doc)
        done
      done;
      let s = Pj_index.Inverted_index.stats idx
      and s' = Pj_index.Inverted_index.stats midx in
      Alcotest.(check int) "n_postings" s.Pj_index.Inverted_index.n_postings
        s'.Pj_index.Inverted_index.n_postings;
      Alcotest.(check int) "n_positions" s.Pj_index.Inverted_index.n_positions
        s'.Pj_index.Inverted_index.n_positions;
      Mapped_index.verify mapped;
      Mapped_index.check mapped;
      let info = Mapped_index.info mapped in
      Alcotest.(check int) "info docs" (Pj_index.Corpus.size corpus)
        info.Mapped_index.n_docs;
      Alcotest.(check bool) "has blocks" true (info.Mapped_index.n_blocks > 0))

let test_shard_index_matches_sub_build () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  with_temp (fun path ->
      Writer.write ~counts:[| 2; 3; 1 |] idx path;
      let mapped = Mapped_index.open_file path in
      Alcotest.(check (array int)) "layout" [| 2; 3; 1 |]
        (Mapped_index.counts mapped);
      let sharded = Mapped_index.sharded mapped in
      let vocab = Pj_index.Corpus.vocab corpus in
      for s = 0 to Pj_index.Sharded_index.n_shards sharded - 1 do
        let pos, len = Pj_index.Sharded_index.range sharded s in
        let mem_shard =
          Pj_index.Inverted_index.build
            (Pj_index.Corpus.sub corpus ~pos ~len)
        in
        let disk_shard = Pj_index.Sharded_index.shard sharded s in
        for tok = 0 to Pj_text.Vocab.size vocab - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "shard %d postings of tok %d" s tok)
            true
            (Pj_index.Posting_list.to_list
               (Pj_index.Inverted_index.postings mem_shard tok)
            = Pj_index.Posting_list.to_list
                (Pj_index.Inverted_index.postings disk_shard tok));
          Alcotest.(check int)
            (Printf.sprintf "shard %d df of tok %d" s tok)
            (Pj_index.Inverted_index.document_frequency mem_shard tok)
            (Pj_index.Inverted_index.document_frequency disk_shard tok)
        done;
        let a = Pj_index.Inverted_index.stats mem_shard
        and b = Pj_index.Inverted_index.stats disk_shard in
        Alcotest.(check int)
          (Printf.sprintf "shard %d postings count" s)
          a.Pj_index.Inverted_index.n_postings
          b.Pj_index.Inverted_index.n_postings;
        Alcotest.(check int)
          (Printf.sprintf "shard %d positions count" s)
          a.Pj_index.Inverted_index.n_positions
          b.Pj_index.Inverted_index.n_positions
      done)

(* --- corruption -------------------------------------------------------- *)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* Truncate-at-every-offset fuzz: whatever the cut point, the reader
   fails with a deterministic, descriptive [Failure "Ondisk: ..."] —
   at open, at verify, or during a deep check — never a raw
   [Invalid_argument] or a successful open of garbage. *)
let test_truncation_fuzz_v4 () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  with_temp (fun path ->
      Writer.write idx path;
      let s = read_bytes path in
      for cut = 0 to String.length s - 1 do
        write_bytes path (String.sub s 0 cut);
        match
          let m = Mapped_index.open_file path in
          Mapped_index.verify m;
          Mapped_index.check m
        with
        | () -> Alcotest.failf "truncation at %d went undetected" cut
        | exception Failure msg ->
            if not (String.length msg >= 7 && String.sub msg 0 7 = "Ondisk:")
            then Alcotest.failf "cut %d: unexpected message %S" cut msg
        | exception e ->
            Alcotest.failf "cut %d: raw exception %s" cut
              (Printexc.to_string e)
      done)

let test_bit_flip_fuzz_v4 () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  with_temp (fun path ->
      Writer.write idx path;
      let s = read_bytes path in
      (* Flip one bit in every byte position; CRC (via verify) must
         catch each, unless the open itself already rejects it. *)
      for i = 0 to String.length s - 1 do
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
        write_bytes path (Bytes.to_string b);
        match
          let m = Mapped_index.open_file path in
          Mapped_index.verify m
        with
        | () -> Alcotest.failf "bit flip at %d went undetected" i
        | exception Failure _ -> ()
        | exception e ->
            Alcotest.failf "flip %d: raw exception %s" i (Printexc.to_string e)
      done)

(* --- migration matrix --------------------------------------------------- *)

(* Rebuild historic formats from a fresh v3 save (same derivation as
   test/index/test_storage.ml), then check that each loads and that
   compacting the loaded index to v4 preserves search behavior exactly. *)
let shard_section_bytes c =
  let buf = Buffer.create 8 in
  Pj_index.Storage.write_varint buf 1;
  Pj_index.Storage.write_varint buf (Pj_index.Corpus.size c);
  Buffer.length buf

let downgrade_file c path ~to_version =
  Pj_index.Storage.save_corpus c path;
  let s = read_bytes path in
  let payload =
    String.sub s 5 (String.length s - 5 - 4 - shard_section_bytes c)
  in
  let old =
    match to_version with
    | 1 -> String.sub s 0 4 ^ "\001" ^ payload
    | 2 ->
        let body = String.sub s 0 4 ^ "\002" ^ payload in
        let crc = Pj_index.Storage.crc32 ~pos:5 body in
        let footer = Bytes.create 4 in
        Bytes.set_int32_le footer 0 crc;
        body ^ Bytes.to_string footer
    | 3 -> s
    | v -> Alcotest.failf "no downgrade to version %d" v
  in
  write_bytes path old

let migration_matrix =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"migration: v1/v2/v3 load, compact to v4, search unchanged"
       corpus_arb
       (fun docs ->
         let corpus = corpus_of docs in
         let ok = ref true in
         List.iter
           (fun v ->
             with_temp (fun legacy_path ->
                 downgrade_file corpus legacy_path ~to_version:v;
                 (* Legacy file still loads... *)
                 let legacy_idx = Pj_index.Storage.load legacy_path in
                 with_temp (fun v4_path ->
                     (* ...compacts to v4... *)
                     Writer.write legacy_idx v4_path;
                     let mapped = Mapped_index.open_file v4_path in
                     Mapped_index.check mapped;
                     (* ...and serves identically to the legacy
                        in-memory index. *)
                     match
                       compare_all_searches ~mem_index:legacy_idx ~mapped
                     with
                     | None -> ()
                     | Some msg ->
                         ok := false;
                         Printf.eprintf "v%d: %s\n" v msg)))
           [ 1; 2; 3 ];
         !ok))

let test_v4_rejected_by_legacy_loader () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  with_temp (fun path ->
      Writer.write idx path;
      match Pj_index.Storage.load path with
      | _ -> Alcotest.fail "legacy loader accepted a v4 file"
      | exception Failure msg ->
          Alcotest.(check bool) "clear error" true
            (String.length msg >= 8 && String.sub msg 0 8 = "Storage:"))

let test_legacy_rejected_by_v4_reader () =
  let corpus = corpus_of sample_docs in
  with_temp (fun path ->
      Pj_index.Storage.save_corpus corpus path;
      match Mapped_index.open_file path with
      | _ -> Alcotest.fail "v4 reader accepted a v3 file"
      | exception Failure msg ->
          Alcotest.(check bool) "clear error" true
            (String.length msg >= 7 && String.sub msg 0 7 = "Ondisk:"))

(* Crash-safety: the v4 writer publishes atomically, like Storage. *)
let test_crashed_write_leaves_old_file () =
  let corpus = corpus_of sample_docs in
  let idx = Pj_index.Inverted_index.build corpus in
  let corpus2 = corpus_of [ [ "aa" ] ] in
  let idx2 = Pj_index.Inverted_index.build corpus2 in
  with_temp (fun path ->
      Fun.protect ~finally:Pj_util.Failpoint.clear (fun () ->
          Writer.write idx path;
          let before = read_bytes path in
          List.iter
            (fun site ->
              Pj_util.Failpoint.clear ();
              Pj_util.Failpoint.arm site Pj_util.Failpoint.Panic;
              (match Writer.write idx2 path with
              | () -> Alcotest.failf "write survived %s panic" site
              | exception Pj_util.Failpoint.Panicked _ -> ());
              Alcotest.(check string)
                (site ^ ": file untouched")
                before (read_bytes path);
              Pj_util.Failpoint.clear ();
              Mapped_index.check (Mapped_index.open_file path))
            [ "ondisk.save.write"; "ondisk.save.rename" ]))

let suite =
  [
    ("mapped: structure round trip", `Quick, test_structure_round_trip);
    ("mapped: shards = sub builds", `Quick, test_shard_index_matches_sub_build);
    search_matrix_equal;
    ("mapped: truncation fuzz", `Quick, test_truncation_fuzz_v4);
    ("mapped: bit-flip fuzz", `Slow, test_bit_flip_fuzz_v4);
    migration_matrix;
    ("mapped: v4 rejected by legacy loader", `Quick, test_v4_rejected_by_legacy_loader);
    ("mapped: legacy rejected by v4 reader", `Quick, test_legacy_rejected_by_v4_reader);
    ("mapped: crashed write leaves old file", `Quick, test_crashed_write_leaves_old_file);
  ]
