(* Concurrency smoke: one writer domain streams adds/deletes/flushes
   (with the background merger armed) while reader domains search
   continuously. Readers must never crash, block, or observe a
   half-published state; afterwards the quiesced index must equal the
   from-scratch build — i.e. the races settle to the same place the
   serial history would. *)

open Pj_live
module IntSet = Set.Make (Int)

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let query =
  Pj_matching.Query.make "ab"
    [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ]

let test_readers_never_block () =
  let config =
    {
      Live_index.default_config with
      Live_index.memtable_capacity = 8;
      merge_threshold = 2;
      background_merge = true;
    }
  in
  let live = Live_index.create ~config () in
  let n_docs = 300 in
  let docs =
    List.init n_docs (fun i ->
        [| "aa"; Printf.sprintf "w%d" (i mod 17); "bb" |])
  in
  let stop = Atomic.make false in
  let searches = Atomic.make 0 in
  let reader () =
    let ok = ref true in
    while not (Atomic.get stop) do
      let hits = Live_index.search ~k:10 live scoring query in
      Atomic.incr searches;
      (* Every hit must be a currently-or-recently live doc: ids are
         dense, so anything outside [0, n_docs) is a torn snapshot. *)
      List.iter
        (fun h ->
          if h.Pj_engine.Searcher.doc_id < 0
             || h.Pj_engine.Searcher.doc_id >= n_docs
          then ok := false)
        hits
    done;
    !ok
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  List.iteri
    (fun i doc ->
      let id = Live_index.add live doc in
      if i mod 10 = 3 then ignore (Live_index.delete live id))
    docs;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  Atomic.set stop true;
  let all_ok = List.for_all (fun d -> Domain.join d) readers in
  Alcotest.(check bool) "readers saw only valid snapshots" true all_ok;
  Alcotest.(check bool) "readers made progress" true (Atomic.get searches > 0);
  (* Quiesced equivalence with the serial oracle. *)
  let deleted =
    List.filteri (fun i _ -> i mod 10 = 3) (List.init n_docs Fun.id)
    |> IntSet.of_list
  in
  let corpus = Pj_index.Corpus.create () in
  let vocab = Pj_index.Corpus.vocab corpus in
  List.iter
    (fun d -> Array.iter (fun w -> ignore (Pj_text.Vocab.intern vocab w)) d)
    docs;
  List.iteri
    (fun id d ->
      ignore
        (Pj_index.Corpus.add_tokens corpus
           (if IntSet.mem id deleted then [||] else d)))
    docs;
  let scratch =
    Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)
  in
  Alcotest.(check bool) "quiesced = from-scratch" true
    (Live_index.search ~k:25 live scoring query
    = Pj_engine.Searcher.search ~k:25 scratch scoring query);
  let s = Live_index.stats live in
  Alcotest.(check int) "accounting invariant" s.Live_index.docs
    (s.Live_index.segment_docs + s.Live_index.memtable_docs
   - s.Live_index.tombstones);
  Live_index.close live

(* Satellite regression: [on_swap] used to read-modify-write the hook
   list without synchronization, so two racing registrations could
   each base their new list on the same old one and silently drop the
   other's hook. The CAS retry loop must keep every registration. *)
let test_on_swap_concurrent_registration () =
  let config =
    {
      Live_index.default_config with
      Live_index.memtable_capacity = 8;
      merge_threshold = 2;
      background_merge = false;
    }
  in
  let live = Live_index.create ~config () in
  let n_domains = 4 and per_domain = 25 in
  let calls = Atomic.make 0 in
  let registrars =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Live_index.on_swap live (fun _ -> Atomic.incr calls)
            done))
  in
  List.iter Domain.join registrars;
  (* One mutation = one generation bump = one invocation per surviving
     hook. Any lost registration shows up as a shortfall here. *)
  ignore (Live_index.add live [| "aa"; "bb" |]);
  Alcotest.(check int) "every racing registration survived"
    (n_domains * per_domain) (Atomic.get calls);
  Live_index.close live

let suite =
  [
    Alcotest.test_case "concurrent readers and writer" `Quick
      test_readers_never_block;
    Alcotest.test_case "on_swap registrations race-free" `Quick
      test_on_swap_concurrent_registration;
  ]
