(* Unit tests for the live index: immediate visibility, delete
   semantics, flush/merge mechanics, the stats accounting invariant,
   and the generation-swap hook. *)

open Pj_live

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let query =
  Pj_matching.Query.make "ab"
    [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ]

(* Tiny deterministic configuration: auto-flush every 4 documents,
   compact above 2 segments, no background domain. *)
let config =
  {
    Live_index.default_config with
    Live_index.memtable_capacity = 4;
    merge_threshold = 2;
    background_merge = false;
  }

let doc_ids live =
  List.map
    (fun h -> h.Pj_engine.Searcher.doc_id)
    (Live_index.search ~k:max_int live scoring query)

let check_invariant live =
  let s = Live_index.stats live in
  Alcotest.(check int)
    "docs = segment_docs + memtable_docs - tombstones" s.Live_index.docs
    (s.Live_index.segment_docs + s.Live_index.memtable_docs
   - s.Live_index.tombstones)

let test_empty () =
  let live = Live_index.create ~config () in
  Alcotest.(check (list int)) "no hits" [] (doc_ids live);
  Alcotest.(check int) "generation 0" 0 (Live_index.generation live);
  Alcotest.(check bool) "nothing to merge" false (Live_index.merge_now live);
  check_invariant live;
  Live_index.close live

let test_add_visible () =
  let live = Live_index.create ~config () in
  let id = Live_index.add live [| "aa"; "bb" |] in
  Alcotest.(check int) "first id" 0 id;
  Alcotest.(check (list int)) "visible before any flush" [ 0 ] (doc_ids live);
  let id2 = Live_index.add live [| "cc"; "aa"; "bb" |] in
  Alcotest.(check int) "dense ids" 1 id2;
  Alcotest.(check bool) "generation advanced" true
    (Live_index.generation live >= 2);
  check_invariant live;
  Live_index.close live

let test_add_batch () =
  let live = Live_index.create ~config () in
  let first =
    Live_index.add_batch live [ [| "aa"; "bb" |]; [| "cc" |]; [| "bb"; "aa" |] ]
  in
  Alcotest.(check int) "first id" 0 first;
  Alcotest.(check (list int)) "batch visible" [ 0; 2 ] (doc_ids live);
  Alcotest.(check int) "total docs" 3 (Live_index.stats live).Live_index.docs;
  check_invariant live;
  Live_index.close live

(* Satellite regression: a batch larger than [memtable_capacity] (4)
   must seal at every capacity boundary inside the batch instead of
   growing the memtable unboundedly until the end. *)
let test_add_batch_seals_at_capacity () =
  let live = Live_index.create ~config () in
  let docs = List.init 10 (fun i -> [| "aa"; "bb"; Printf.sprintf "w%d" i |]) in
  let first = Live_index.add_batch live docs in
  Alcotest.(check int) "first id" 0 first;
  let st = Live_index.stats live in
  Alcotest.(check int) "all searchable" 10 st.Live_index.docs;
  Alcotest.(check bool)
    "memtable within capacity" true
    (st.Live_index.memtable_docs <= 4);
  Alcotest.(check int) "two chunks sealed" 2 st.Live_index.segments;
  Alcotest.(check int) "residue in memtable" 2 st.Live_index.memtable_docs;
  Alcotest.(check (list int)) "batch visible"
    (List.init 10 Fun.id)
    (doc_ids live);
  check_invariant live;
  Live_index.close live

(* One merge_now over a deep segment stack compacts several disjoint
   adjacent pairs in the same step (concurrently), installing them
   under a single generation bump. *)
let test_parallel_merge () =
  let config =
    { config with Live_index.memtable_capacity = 1; merge_parallelism = 4 }
  in
  let live = Live_index.create ~config () in
  for i = 0 to 7 do
    ignore (Live_index.add live [| "aa"; "bb"; Printf.sprintf "w%d" i |])
  done;
  let st = Live_index.stats live in
  Alcotest.(check int) "eight singleton segments" 8 st.Live_index.segments;
  let gen_before = Live_index.generation live in
  Alcotest.(check bool) "one step ran" true (Live_index.merge_now live);
  let st = Live_index.stats live in
  (* excess = 8 - 2 = 6, parallelism 4 → four disjoint pairs folded. *)
  Alcotest.(check int) "four pairs merged in one step" 4 st.Live_index.segments;
  Alcotest.(check int) "merges counted per pair" 4 st.Live_index.merges;
  Alcotest.(check int) "one generation bump for the whole step"
    (gen_before + 1)
    (Live_index.generation live);
  Alcotest.(check (list int)) "all docs survive" (List.init 8 Fun.id)
    (doc_ids live);
  Live_index.quiesce live;
  let st = Live_index.stats live in
  Alcotest.(check bool) "policy satisfied" true (st.Live_index.segments <= 2);
  Alcotest.(check (list int)) "quiesced results intact" (List.init 8 Fun.id)
    (doc_ids live);
  check_invariant live;
  Live_index.close live

let test_delete () =
  let live = Live_index.create ~config () in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.add live [| "aa"; "cc"; "bb" |]);
  Alcotest.(check (list int)) "both visible" [ 0; 1 ] (doc_ids live);
  (match Live_index.delete live 0 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete of a live doc failed");
  Alcotest.(check (list int)) "hidden immediately" [ 1 ] (doc_ids live);
  Alcotest.(check bool) "double delete" true
    (Live_index.delete live 0 = Error `Not_found);
  Alcotest.(check bool) "never-assigned id" true
    (Live_index.delete live 99 = Error `Not_found);
  check_invariant live;
  Live_index.close live

let test_auto_flush () =
  let live = Live_index.create ~config () in
  for _ = 1 to 4 do
    ignore (Live_index.add live [| "aa"; "bb" |])
  done;
  let s = Live_index.stats live in
  Alcotest.(check int) "memtable sealed at capacity" 0 s.Live_index.memtable_docs;
  Alcotest.(check int) "one segment" 1 s.Live_index.segments;
  Alcotest.(check (list int)) "all still searchable" [ 0; 1; 2; 3 ]
    (doc_ids live);
  check_invariant live;
  Live_index.close live

let test_flush_idempotent () =
  let live = Live_index.create ~config () in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  let g1 = Live_index.flush live in
  Alcotest.(check int) "flush sealed the memtable" 1
    (Live_index.stats live).Live_index.segments;
  let g2 = Live_index.flush live in
  Alcotest.(check int) "empty flush is a no-op" g1 g2;
  Alcotest.(check int) "no empty segment" 1
    (Live_index.stats live).Live_index.segments;
  Live_index.close live

let test_merge_purges_tombstones () =
  let live = Live_index.create ~config () in
  (* Three sealed segments of two docs each. *)
  for i = 0 to 5 do
    ignore (Live_index.add live [| "aa"; "bb"; Printf.sprintf "w%d" i |]);
    if i mod 2 = 1 then ignore (Live_index.flush live)
  done;
  Alcotest.(check int) "three segments" 3
    (Live_index.stats live).Live_index.segments;
  (match Live_index.delete live 1 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  Alcotest.(check int) "tombstone pending" 1
    (Live_index.stats live).Live_index.tombstones;
  Live_index.quiesce live;
  let s = Live_index.stats live in
  Alcotest.(check bool) "compacted to threshold" true
    (s.Live_index.segments <= 2);
  Alcotest.(check int) "tombstone purged" 0 s.Live_index.tombstones;
  Alcotest.(check bool) "merges counted" true (s.Live_index.merges >= 1);
  Alcotest.(check (list int)) "deleted doc stays gone" [ 0; 2; 3; 4; 5 ]
    (doc_ids live);
  Alcotest.(check bool) "compacted id not deletable" true
    (Live_index.delete live 1 = Error `Not_found);
  check_invariant live;
  Live_index.close live

let test_on_swap () =
  let live = Live_index.create ~config () in
  let gens = ref [] in
  Live_index.on_swap live (fun g -> gens := g :: !gens);
  ignore (Live_index.add live [| "aa" |]);
  ignore (Live_index.add live [| "bb" |]);
  ignore (Live_index.flush live);
  (match Live_index.delete live 0 with Ok () -> () | Error _ -> ());
  let observed = List.rev !gens in
  Alcotest.(check (list int)) "one bump per mutation" [ 1; 2; 3; 4 ] observed;
  Alcotest.(check int) "hook saw the final generation" 4
    (Live_index.generation live);
  Live_index.close live

let test_k_zero () =
  let live = Live_index.create ~config () in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  Alcotest.(check (list int))
    "k=0" []
    (List.map
       (fun h -> h.Pj_engine.Searcher.doc_id)
       (Live_index.search ~k:0 live scoring query));
  Live_index.close live

let suite =
  [
    Alcotest.test_case "empty index" `Quick test_empty;
    Alcotest.test_case "add is visible immediately" `Quick test_add_visible;
    Alcotest.test_case "add_batch" `Quick test_add_batch;
    Alcotest.test_case "add_batch seals at capacity" `Quick
      test_add_batch_seals_at_capacity;
    Alcotest.test_case "parallel merge_now compacts disjoint pairs" `Quick
      test_parallel_merge;
    Alcotest.test_case "delete semantics" `Quick test_delete;
    Alcotest.test_case "auto-flush at capacity" `Quick test_auto_flush;
    Alcotest.test_case "flush is idempotent" `Quick test_flush_idempotent;
    Alcotest.test_case "merge purges tombstones" `Quick
      test_merge_purges_tombstones;
    Alcotest.test_case "on_swap sees every generation" `Quick test_on_swap;
    Alcotest.test_case "k = 0" `Quick test_k_zero;
  ]
