let () =
  Alcotest.run "proxjoin.live"
    [
      ("live", Test_live.suite);
      ("persist", Test_live_persist.suite);
      ("oracle", Test_live_oracle.suite);
      ("concurrent", Test_live_concurrent.suite);
    ]
