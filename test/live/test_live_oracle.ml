(* Randomized equivalence oracle: an arbitrary interleaving of
   add / delete / flush / merge / search against the live index must
   yield exactly the hits (ids, scores, and matchsets, structurally
   equal) of a from-scratch [Inverted_index.build] over the surviving
   documents.

   The oracle corpus reproduces the live index's token ids by
   pre-interning every word of every document (deleted ones included)
   in original order, then adding deleted documents as empty token
   arrays — which keeps the doc ids aligned while contributing no
   postings, exactly the semantics of a tombstone.

   Each seed is printed before it runs; to replay one, set
   $LIVE_SEED. *)

open Pj_live
module IntSet = Set.Make (Int)

let alphabet = [| "aa"; "bb"; "ab"; "ba"; "cc"; "dd" |]

(* Degraded expansion forms exercise max-score pruning across the
   segment/memtable fragments, not just exact intersection. *)
let query =
  Pj_matching.Query.make "oracle"
    [
      Pj_matching.Matcher.of_table ~name:"t1" [ ("aa", 1.0); ("ab", 0.4) ];
      Pj_matching.Matcher.of_table ~name:"t2" [ ("bb", 0.9); ("ba", 0.3) ];
    ]

let scorings =
  [
    Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.25);
    Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.25);
    Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.25);
  ]

let config =
  {
    Live_index.default_config with
    Live_index.memtable_capacity = 4;
    merge_threshold = 2;
    background_merge = false;
  }

let random_doc rng =
  Array.init
    (1 + Pj_util.Prng.int rng 12)
    (fun _ -> alphabet.(Pj_util.Prng.int rng (Array.length alphabet)))

(* From-scratch reference over the surviving documents. [docs] is every
   document ever added, in id order. *)
let scratch_searcher docs deleted =
  let corpus = Pj_index.Corpus.create () in
  let vocab = Pj_index.Corpus.vocab corpus in
  List.iter
    (fun doc -> Array.iter (fun w -> ignore (Pj_text.Vocab.intern vocab w)) doc)
    docs;
  List.iteri
    (fun id doc ->
      ignore
        (Pj_index.Corpus.add_tokens corpus
           (if IntSet.mem id deleted then [||] else doc)))
    docs;
  Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)

let hit_line (h : Pj_engine.Searcher.hit) =
  Printf.sprintf "doc %d score %.17g matches %d" h.Pj_engine.Searcher.doc_id
    h.Pj_engine.Searcher.score
    (Array.length h.Pj_engine.Searcher.matchset)

let check_equal ~ctx live docs deleted =
  let scratch = scratch_searcher (List.rev docs) deleted in
  List.iter
    (fun scoring ->
      List.iter
        (fun k ->
          List.iter
            (fun prune ->
              (* The reference is always the exhaustive traversal;
                 [blockmax:true] exercises block-max skips over every
                 snapshot shape (memtable prefix cursors, sealed and
                 mmap segments, tombstone accept filters). *)
              let want =
                Pj_engine.Searcher.search ~k ~prune ~blockmax:false scratch
                  scoring query
              in
              List.iter
                (fun blockmax ->
                  let got =
                    Live_index.search ~k ~prune ~blockmax live scoring query
                  in
                  if got <> want then
                    Alcotest.failf
                      "%s: %s k=%d prune=%b blockmax=%b\n\
                       live:    %s\n\
                       scratch: %s" ctx
                      (Pj_core.Scoring.name scoring)
                      k prune blockmax
                      (String.concat "; " (List.map hit_line got))
                      (String.concat "; " (List.map hit_line want)))
                [ true; false ])
            [ true; false ])
        [ 1; 10; 1000 ])
    scorings

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pj_live_oracle_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
    dir

(* [mmap] runs the same op sequence against a persistent index whose
   sealed segments serve off their own mapped files — the live-segment
   arm of the on-disk/in-memory equivalence oracle. [heavy] skews the
   op mix toward deletions, so snapshots are tombstone-heavy: most
   postings the cursors walk belong to dead documents, stressing the
   interaction of block-max skips with the [accept] filter (a skipped
   region must never resurrect a tombstoned doc, a surviving doc must
   never be lost to a bound computed over mostly-dead blocks). *)
let run_seed ?(mmap = false) ?(heavy = false) seed =
  Printf.printf "live oracle seed %d (replay: LIVE_SEED=%d)%s%s\n%!" seed seed
    (if mmap then " [mmap segments]" else "")
    (if heavy then " [tombstone-heavy]" else "");
  let rng = Pj_util.Prng.create seed in
  let live =
    if mmap then begin
      let dir = fresh_dir () in
      let config =
        { config with Live_index.dir = Some dir; mmap_segments = true }
      in
      Live_index.open_dir ~config dir
    end
    else Live_index.create ~config ()
  in
  let docs = ref [] (* reverse id order *) and total = ref 0 in
  let deleted = ref IntSet.empty in
  let add_cut = if heavy then 22 else 40
  and batch_cut = if heavy then 32 else 55
  and delete_cut = if heavy then 72 else 70 in
  for op = 1 to 150 do
    let roll = Pj_util.Prng.int rng 100 in
    if roll < add_cut || !total = 0 then begin
      let doc = random_doc rng in
      let id = Live_index.add live doc in
      Alcotest.(check int) "dense ids" !total id;
      docs := doc :: !docs;
      incr total
    end
    else if roll < batch_cut then begin
      (* Batch sizes up to 9 cross the capacity-4 boundary, so sealing
         mid-batch is exercised against the same oracle. *)
      let batch = List.init (1 + Pj_util.Prng.int rng 9) (fun _ -> random_doc rng) in
      let first = Live_index.add_batch live batch in
      Alcotest.(check int) "dense batch ids" !total first;
      List.iter
        (fun doc ->
          docs := doc :: !docs;
          incr total)
        batch
    end
    else if roll < delete_cut then begin
      let id = Pj_util.Prng.int rng !total in
      let expect_ok = not (IntSet.mem id !deleted) in
      (match Live_index.delete live id with
      | Ok () ->
          if not expect_ok then
            Alcotest.failf "seed %d: delete %d succeeded twice" seed id;
          deleted := IntSet.add id !deleted
      | Error `Not_found ->
          if expect_ok then
            Alcotest.failf "seed %d: delete %d of a live doc failed" seed id)
    end
    else if roll < 80 then ignore (Live_index.flush live)
    else if roll < 90 then ignore (Live_index.merge_now live)
    else
      check_equal
        ~ctx:(Printf.sprintf "seed %d op %d (mid-run)" seed op)
        live !docs !deleted
  done;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  check_equal ~ctx:(Printf.sprintf "seed %d (quiesced)" seed) live !docs
    !deleted;
  (* The accounting invariant must hold here too. *)
  let s = Live_index.stats live in
  Alcotest.(check int) "stats.docs" (!total - IntSet.cardinal !deleted)
    s.Live_index.docs;
  Alcotest.(check int) "stats.total_docs" !total s.Live_index.total_docs;
  Alcotest.(check int) "memtable flushed" 0 s.Live_index.memtable_docs;
  Live_index.close live

let seeds () =
  match Sys.getenv_opt "LIVE_SEED" with
  | Some s -> [ int_of_string s ]
  | None -> [ 11; 42; 2024 ]

let test_oracle () = List.iter run_seed (seeds ())
let test_oracle_mmap () = List.iter (run_seed ~mmap:true) (seeds ())

let test_oracle_heavy () =
  List.iter (run_seed ~heavy:true) (seeds ());
  List.iter (run_seed ~mmap:true ~heavy:true) (seeds ())

let suite =
  [
    Alcotest.test_case "random ops = from-scratch build" `Quick test_oracle;
    Alcotest.test_case "random ops = from-scratch build (mmap segments)"
      `Quick test_oracle_mmap;
    Alcotest.test_case "tombstone-heavy ops = from-scratch build" `Quick
      test_oracle_heavy;
  ]
