(* Persistence roundtrips: a reopened live index must answer every
   query with results structurally identical to the index that wrote
   the manifest — same doc ids, same scores, same matchsets (token ids
   included, which is what forces the manifest to carry the vocabulary
   in interning order). *)

open Pj_live

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let query =
  Pj_matching.Query.make "ab"
    [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ]

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pj_live_test_%d_%d" (Unix.getpid ()) !counter)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let config ?(mmap = false) dir =
  {
    Live_index.dir = Some dir;
    memtable_capacity = 4;
    merge_threshold = 2;
    background_merge = false;
    mmap_segments = mmap;
    merge_parallelism = 2;
  }

let hits live = Live_index.search ~k:max_int live scoring query

let test_roundtrip () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 3 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  let want_stats = Live_index.stats live in
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "identical hits after recovery" true
    (hits reopened = want);
  let got = Live_index.stats reopened in
  Alcotest.(check int) "generation recovered" want_stats.Live_index.generation
    got.Live_index.generation;
  Alcotest.(check int) "docs recovered" want_stats.Live_index.docs
    got.Live_index.docs;
  Alcotest.(check int) "total_docs recovered" want_stats.Live_index.total_docs
    got.Live_index.total_docs;
  (* The recovered index keeps working: writes resume where they left
     off. *)
  let id = Live_index.add reopened [| "aa"; "bb"; "fresh" |] in
  Alcotest.(check int) "ids continue densely"
    want_stats.Live_index.total_docs id;
  Alcotest.(check bool) "new doc searchable" true
    (List.exists
       (fun h -> h.Pj_engine.Searcher.doc_id = id)
       (hits reopened));
  Live_index.close reopened

let test_flush_is_the_durability_barrier () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "kept" |]);
  ignore (Live_index.flush live);
  ignore (Live_index.add live [| "aa"; "bb"; "lost" |]);
  (* No flush: the second document exists only in the memtable. *)
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check int) "memtable doc lost by design" 1
    (Live_index.stats reopened).Live_index.total_docs;
  Alcotest.(check (list int))
    "flushed doc survived" [ 0 ]
    (List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits reopened));
  Live_index.close reopened

let test_deletes_durable_via_manifest_only_flush () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.flush live);
  (match Live_index.delete live 0 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  (* The memtable is empty, so this flush writes no segment — only a
     manifest carrying the tombstone. *)
  ignore (Live_index.flush live);
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check (list int))
    "tombstone survived recovery" [ 1 ]
    (List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits reopened));
  Live_index.close reopened

(* A writer with heap-served segments and a reader serving them off
   mmap (and vice versa) must agree hit-for-hit: the segment file is
   one format, the serving mode a pure runtime choice. *)
let test_mmap_recovery_identical () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 3 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  let mapped = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
  Alcotest.(check bool) "mmap-served recovery identical" true
    (hits mapped = want);
  (* Keeps working: adds land in the heap memtable, flushes seal into
     mapped segments. *)
  ignore (Live_index.add mapped [| "aa"; "bb"; "fresh" |]);
  ignore (Live_index.flush mapped);
  Live_index.quiesce mapped;
  let want_more = hits mapped in
  Live_index.close mapped;
  let plain = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "heap-served recovery identical" true
    (hits plain = want_more);
  Live_index.close plain

(* Legacy v1 segment files (no postings section) still recover — and
   under [mmap_segments] fall back to the heap rebuild per segment. *)
let test_v1_segments_still_load () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  (* Downgrade every segment file in place to the v1 layout. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".seg" then begin
        let path = Filename.concat dir f in
        let sf = Segment_file.read path in
        Segment_file.write_v1 ~failpoint:"test.downgrade" path sf
      end)
    (Sys.readdir dir);
  List.iter
    (fun mmap ->
      let reopened = Live_index.open_dir ~config:(config ~mmap dir) dir in
      Alcotest.(check bool)
        (Printf.sprintf "v1 recovery identical (mmap=%b)" mmap)
        true
        (hits reopened = want);
      Live_index.close reopened)
    [ false; true ]

(* Satellite regression: recovery used to catch only [Failure _] around
   the mmap attempt, so any other exception (a [Unix.Unix_error] from a
   truncated map, a fault-injected [Failpoint.Injected], ...) crashed
   [open_dir] even though the segment file's document log was intact
   and a heap rebuild would have served fine. The [live.mmap_open]
   failpoint raises exactly such a non-[Failure] exception. *)
let test_mmap_open_failure_falls_back () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "live.mmap_open" Pj_util.Failpoint.Fail;
      let reopened = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
      Alcotest.(check bool) "every mmap attempt was injected" true
        (Pj_util.Failpoint.fired "live.mmap_open" > 0);
      Alcotest.(check bool) "heap-rebuild fallback identical" true
        (hits reopened = want);
      (* The degraded index keeps accepting writes. *)
      let id = Live_index.add reopened [| "aa"; "bb"; "fresh" |] in
      Alcotest.(check bool) "new doc searchable" true
        (List.exists
           (fun h -> h.Pj_engine.Searcher.doc_id = id)
           (hits reopened));
      Live_index.close reopened)

let test_orphan_cleanup () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.flush live);
  let want = hits live in
  Live_index.close live;
  (* Droppings of a crashed flush/merge: a temp file and a segment the
     manifest never adopted. *)
  let orphan_tmp = Filename.concat dir "seg-000099.seg.tmp" in
  let orphan_seg = Filename.concat dir (Printf.sprintf "seg-%06d.seg" 98) in
  List.iter
    (fun p ->
      let oc = open_out p in
      output_string oc "junk";
      close_out oc)
    [ orphan_tmp; orphan_seg ];
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "recovery unaffected by orphans" true
    (hits reopened = want);
  Alcotest.(check bool) "orphan tmp removed" false (Sys.file_exists orphan_tmp);
  Alcotest.(check bool) "orphan segment removed" false
    (Sys.file_exists orphan_seg);
  Live_index.close reopened

let suite =
  [
    Alcotest.test_case "roundtrip is byte-identical" `Quick test_roundtrip;
    Alcotest.test_case "flush is the durability barrier" `Quick
      test_flush_is_the_durability_barrier;
    Alcotest.test_case "deletes persist via manifest-only flush" `Quick
      test_deletes_durable_via_manifest_only_flush;
    Alcotest.test_case "orphan files cleaned at open" `Quick
      test_orphan_cleanup;
    Alcotest.test_case "mmap-served segments recover identically" `Quick
      test_mmap_recovery_identical;
    Alcotest.test_case "v1 segment files still load" `Quick
      test_v1_segments_still_load;
    Alcotest.test_case "mmap open failure falls back to heap rebuild" `Quick
      test_mmap_open_failure_falls_back;
  ]
