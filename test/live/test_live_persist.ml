(* Persistence roundtrips: a reopened live index must answer every
   query with results structurally identical to the index that wrote
   the manifest — same doc ids, same scores, same matchsets (token ids
   included, which is what forces the manifest to carry the vocabulary
   in interning order). *)

open Pj_live

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let query =
  Pj_matching.Query.make "ab"
    [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ]

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pj_live_test_%d_%d" (Unix.getpid ()) !counter)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  dir

let config ?(mmap = false) ?(wal = false) dir =
  {
    Live_index.dir = Some dir;
    memtable_capacity = 4;
    merge_threshold = 2;
    background_merge = false;
    mmap_segments = mmap;
    merge_parallelism = 2;
    wal;
    fsync_policy = Wal.Per_batch;
  }

let hits live = Live_index.search ~k:max_int live scoring query

let test_roundtrip () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 3 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  let want_stats = Live_index.stats live in
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "identical hits after recovery" true
    (hits reopened = want);
  let got = Live_index.stats reopened in
  Alcotest.(check int) "generation recovered" want_stats.Live_index.generation
    got.Live_index.generation;
  Alcotest.(check int) "docs recovered" want_stats.Live_index.docs
    got.Live_index.docs;
  Alcotest.(check int) "total_docs recovered" want_stats.Live_index.total_docs
    got.Live_index.total_docs;
  (* The recovered index keeps working: writes resume where they left
     off. *)
  let id = Live_index.add reopened [| "aa"; "bb"; "fresh" |] in
  Alcotest.(check int) "ids continue densely"
    want_stats.Live_index.total_docs id;
  Alcotest.(check bool) "new doc searchable" true
    (List.exists
       (fun h -> h.Pj_engine.Searcher.doc_id = id)
       (hits reopened));
  Live_index.close reopened

let test_flush_is_the_durability_barrier () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "kept" |]);
  ignore (Live_index.flush live);
  ignore (Live_index.add live [| "aa"; "bb"; "lost" |]);
  (* No flush: the second document exists only in the memtable. *)
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check int) "memtable doc lost by design" 1
    (Live_index.stats reopened).Live_index.total_docs;
  Alcotest.(check (list int))
    "flushed doc survived" [ 0 ]
    (List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits reopened));
  Live_index.close reopened

let test_deletes_durable_via_manifest_only_flush () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.flush live);
  (match Live_index.delete live 0 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  (* The memtable is empty, so this flush writes no segment — only a
     manifest carrying the tombstone. *)
  ignore (Live_index.flush live);
  Live_index.close live;
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check (list int))
    "tombstone survived recovery" [ 1 ]
    (List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits reopened));
  Live_index.close reopened

(* A writer with heap-served segments and a reader serving them off
   mmap (and vice versa) must agree hit-for-hit: the segment file is
   one format, the serving mode a pure runtime choice. *)
let test_mmap_recovery_identical () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 3 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  let mapped = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
  Alcotest.(check bool) "mmap-served recovery identical" true
    (hits mapped = want);
  (* Keeps working: adds land in the heap memtable, flushes seal into
     mapped segments. *)
  ignore (Live_index.add mapped [| "aa"; "bb"; "fresh" |]);
  ignore (Live_index.flush mapped);
  Live_index.quiesce mapped;
  let want_more = hits mapped in
  Live_index.close mapped;
  let plain = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "heap-served recovery identical" true
    (hits plain = want_more);
  Live_index.close plain

(* Legacy v1 segment files (no postings section) still recover — and
   under [mmap_segments] fall back to the heap rebuild per segment. *)
let test_v1_segments_still_load () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  (* Downgrade every segment file in place to the v1 layout. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".seg" then begin
        let path = Filename.concat dir f in
        let sf = Segment_file.read path in
        Segment_file.write_v1 ~failpoint:"test.downgrade" path sf
      end)
    (Sys.readdir dir);
  List.iter
    (fun mmap ->
      let reopened = Live_index.open_dir ~config:(config ~mmap dir) dir in
      Alcotest.(check bool)
        (Printf.sprintf "v1 recovery identical (mmap=%b)" mmap)
        true
        (hits reopened = want);
      Live_index.close reopened)
    [ false; true ]

(* Satellite regression: recovery used to catch only [Failure _] around
   the mmap attempt, so any other exception (a [Unix.Unix_error] from a
   truncated map, a fault-injected [Failpoint.Injected], ...) crashed
   [open_dir] even though the segment file's document log was intact
   and a heap rebuild would have served fine. The [live.mmap_open]
   failpoint raises exactly such a non-[Failure] exception. *)
let test_mmap_open_failure_falls_back () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  ignore (Live_index.flush live);
  Live_index.quiesce live;
  let want = hits live in
  Live_index.close live;
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "live.mmap_open" Pj_util.Failpoint.Fail;
      let reopened = Live_index.open_dir ~config:(config ~mmap:true dir) dir in
      Alcotest.(check bool) "every mmap attempt was injected" true
        (Pj_util.Failpoint.fired "live.mmap_open" > 0);
      Alcotest.(check bool) "heap-rebuild fallback identical" true
        (hits reopened = want);
      (* The degraded index keeps accepting writes. *)
      let id = Live_index.add reopened [| "aa"; "bb"; "fresh" |] in
      Alcotest.(check bool) "new doc searchable" true
        (List.exists
           (fun h -> h.Pj_engine.Searcher.doc_id = id)
           (hits reopened));
      Live_index.close reopened)

let test_orphan_cleanup () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config dir) dir in
  ignore (Live_index.add live [| "aa"; "bb" |]);
  ignore (Live_index.flush live);
  let want = hits live in
  Live_index.close live;
  (* Droppings of a crashed flush/merge: a temp file and a segment the
     manifest never adopted. *)
  let orphan_tmp = Filename.concat dir "seg-000099.seg.tmp" in
  let orphan_seg = Filename.concat dir (Printf.sprintf "seg-%06d.seg" 98) in
  List.iter
    (fun p ->
      let oc = open_out p in
      output_string oc "junk";
      close_out oc)
    [ orphan_tmp; orphan_seg ];
  let reopened = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "recovery unaffected by orphans" true
    (hits reopened = want);
  Alcotest.(check bool) "orphan tmp removed" false (Sys.file_exists orphan_tmp);
  Alcotest.(check bool) "orphan segment removed" false
    (Sys.file_exists orphan_seg);
  Live_index.close reopened

(* --- write-ahead log ---------------------------------------------------- *)

(* "Crash" = abandon the handle without close/flush: nothing buffered
   in the process survives except what the WAL (fsynced per batch)
   already holds — exactly the kill -9 shape. *)

(* The distinctive (non-filler) word of a recovered document. *)
let doc_word live id =
  let corpus = Live_index.corpus live in
  let vocab = Pj_index.Corpus.vocab corpus in
  let d = Pj_index.Corpus.document corpus id in
  let words =
    Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens
  in
  match Array.find_opt (fun w -> w <> "aa" && w <> "bb") words with
  | Some w -> w
  | None -> Alcotest.failf "doc %d has no distinctive word" id

let test_wal_recovers_unflushed () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  (* Capacity is 4: three adds stay memtable-only, no segment, no
     manifest — without the WAL every one of them would be lost. *)
  for i = 0 to 2 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 1 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  let want = hits live in
  let want_gen = Live_index.generation live in
  Alcotest.(check int) "nothing beyond the durable horizon" 0
    (Live_index.stats live).Live_index.durable_lag;
  (* crash *)
  let reopened = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check bool) "acknowledged state recovered byte-identically" true
    (hits reopened = want);
  Alcotest.(check int) "generation recovered" want_gen
    (Live_index.generation reopened);
  Alcotest.(check int) "all three docs recovered" 3
    (Live_index.stats reopened).Live_index.total_docs;
  (* The recovered index keeps working and ids stay dense. *)
  Alcotest.(check int) "ids continue densely" 3
    (Live_index.add reopened [| "aa"; "bb"; "fresh" |]);
  Live_index.close reopened

let test_wal_rotation_across_flushes () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  (* 10 adds with capacity 4: two auto-flush rotations, two docs left
     in the memtable covered only by the log. *)
  for i = 0 to 9 do
    ignore (Live_index.add live [| "aa"; Printf.sprintf "w%d" i; "bb" |])
  done;
  (match Live_index.delete live 3 with
  | Ok () -> ()
  | Error `Not_found -> Alcotest.fail "delete failed");
  let want = hits live in
  let want_gen = Live_index.generation live in
  (* crash *)
  let reopened = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check bool) "flushed + logged state recovered" true
    (hits reopened = want);
  Alcotest.(check int) "generation recovered" want_gen
    (Live_index.generation reopened);
  (* And the recovered state survives a second crash unchanged. *)
  let again = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check bool) "idempotent re-recovery" true (hits again = want);
  Live_index.close again;
  Live_index.close reopened

let test_wal_torn_tail_discarded () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "first" |]);
  ignore (Live_index.add live [| "aa"; "bb"; "second" |]);
  (* crash mid-append: a record's length prefix landed but its bytes
     did not. *)
  let path = Filename.concat dir Wal.filename in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 path
  in
  output_string oc "\x40\x00\x00\x00torn";
  close_out oc;
  let reopened = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check int) "intact prefix recovered" 2
    (Live_index.stats reopened).Live_index.total_docs;
  (* The torn bytes were truncated away: appends resume cleanly. *)
  ignore (Live_index.add reopened [| "aa"; "bb"; "third" |]);
  let want = hits reopened in
  let again = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check bool) "recovery after truncation + append" true
    (hits again = want);
  Live_index.close again;
  Live_index.close reopened;
  Live_index.close live

let test_wal_corrupt_record_stops_replay () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "first" |]);
  ignore (Live_index.add live [| "aa"; "bb"; "second" |]);
  (* Flip the last byte — inside the final record's CRC. *)
  let path = Filename.concat dir Wal.filename in
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read (Unix.openfile path [ Unix.O_RDONLY ] 0o644) b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let reopened = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check int) "corrupt record and tail discarded" 1
    (Live_index.stats reopened).Live_index.total_docs;
  Alcotest.(check string) "surviving doc intact" "first" (doc_word reopened 0);
  Live_index.close reopened;
  Live_index.close live

(* Crash at each WAL failpoint site: an operation that raised was
   never acknowledged, so after recovery it must be absent or fully
   present — never torn — while every acknowledged one survives. *)
let test_wal_crash_sites () =
  let expect_injected f =
    match f () with
    | _ -> Alcotest.fail "expected an injected fault"
    | exception Pj_util.Failpoint.Injected _ -> ()
  in
  (* live.wal.append: fails before anything mutates — the doc must be
     absent after recovery and the live process stays consistent. *)
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "acked" |]);
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "live.wal.append" Pj_util.Failpoint.Fail;
      expect_injected (fun () ->
          Live_index.add live [| "aa"; "bb"; "unacked" |]));
  let r = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check int) "append-crash: only the acked doc" 1
    (Live_index.stats r).Live_index.total_docs;
  Alcotest.(check string) "append-crash: acked doc intact" "acked"
    (doc_word r 0);
  Live_index.close r;
  Live_index.close live;
  (* live.wal.fsync: the op applied in memory but its record never
     reached the file — after the crash it is absent; the earlier
     acked doc survives. *)
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "acked" |]);
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "live.wal.fsync" Pj_util.Failpoint.Fail;
      expect_injected (fun () ->
          Live_index.add live [| "aa"; "bb"; "unacked" |]));
  let r = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check int) "fsync-crash: unacked doc absent" 1
    (Live_index.stats r).Live_index.total_docs;
  Alcotest.(check string) "fsync-crash: acked doc intact" "acked"
    (doc_word r 0);
  Live_index.close r;
  Live_index.close live;
  (* live.wal.rotate: fires inside flush after the manifest landed —
     every acked doc is durable via the manifest; the stale log
     replays as no-ops. *)
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "one" |]);
  ignore (Live_index.add live [| "aa"; "bb"; "two" |]);
  let want = hits live in
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "live.wal.rotate" Pj_util.Failpoint.Fail;
      expect_injected (fun () -> Live_index.flush live));
  let r = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check bool) "rotate-crash: acked docs recovered" true
    (hits r = want);
  Alcotest.(check int) "rotate-crash: no duplicates from stale log" 2
    (Live_index.stats r).Live_index.total_docs;
  Live_index.close r;
  Live_index.close live

(* Opting out of the WAL retires the log: its records must not leak
   into an epoch that reuses their doc ids. *)
let test_wal_disabled_removes_log () =
  let dir = fresh_dir () in
  let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  ignore (Live_index.add live [| "aa"; "bb"; "logged" |]);
  (* crash, then reopen with the WAL off: back to flush-barrier
     semantics, so the unflushed doc is gone — and so is the log. *)
  let plain = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check int) "unflushed doc lost without wal" 0
    (Live_index.stats plain).Live_index.total_docs;
  Alcotest.(check bool) "log removed" false
    (Sys.file_exists (Filename.concat dir Wal.filename));
  ignore (Live_index.add plain [| "aa"; "bb"; "fresh" |]);
  ignore (Live_index.flush plain);
  Live_index.close plain;
  (* Re-enabling must not resurrect the old epoch's records. *)
  let again = Live_index.open_dir ~config:(config ~wal:true dir) dir in
  Alcotest.(check int) "old records not resurrected" 1
    (Live_index.stats again).Live_index.total_docs;
  Alcotest.(check string) "the new epoch's doc" "fresh" (doc_word again 0);
  Live_index.close again;
  Live_index.close live

(* Satellite: tmp droppings are cleaned even before the first flush
   ever writes a manifest. *)
let test_tmp_cleanup_without_manifest () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let planted = Filename.concat dir "MANIFEST.tmp" in
  let oc = open_out planted in
  output_string oc "junk";
  close_out oc;
  let live = Live_index.open_dir ~config:(config dir) dir in
  Alcotest.(check bool) "tmp removed with no manifest present" false
    (Sys.file_exists planted);
  Live_index.close live

(* The chaos oracle: a randomized op stream with kill points injected
   at every durability-relevant site. After each simulated crash the
   reopened index must (a) contain every acknowledged add, intact;
   (b) hide every acknowledged delete; (c) contain nothing that was
   never attempted — and its hit list must be byte-identical to a
   from-scratch in-memory index over the recovered documents. *)
let test_wal_chaos_oracle () =
  let sites =
    [| "live.wal.append"; "live.wal.fsync"; "live.wal.rotate";
       "live.flush"; "live.manifest" |]
  in
  let rng = Random.State.make [| 0xC4A05 |] in
  let dir = fresh_dir () in
  let uniq = ref 0 in
  let fresh_word () =
    incr uniq;
    (* letters only, so tokenization concerns never intrude *)
    let b = Buffer.create 8 in
    Buffer.add_string b "u";
    let n = ref !uniq in
    while !n > 0 do
      Buffer.add_char b (Char.chr (Char.code 'a' + (!n mod 26)));
      n := !n / 26
    done;
    Buffer.contents b
  in
  (* Truth as of the last crash boundary, plus this epoch's fates. *)
  let attempted_adds = Hashtbl.create 64 in
  let acked_adds = ref [] in
  let acked_dels = ref [] in
  let attempted_dels = ref [] in
  for _epoch = 1 to 12 do
    Pj_util.Failpoint.clear ();
    let live = Live_index.open_dir ~config:(config ~wal:true dir) dir in
    let corpus = Live_index.corpus live in
    let n = Pj_index.Corpus.size corpus in
    let word_of id = doc_word live id in
    let present =
      List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits live)
    in
    let present_words = List.map word_of present in
    (* (a) acknowledged adds survive, unless acked-deleted (an
       attempted-but-failed delete may legitimately have landed). *)
    List.iter
      (fun w ->
        if List.mem w !acked_dels then ()
        else if List.mem w !attempted_dels then ()
        else
          Alcotest.(check bool)
            (Printf.sprintf "acked doc %s present after crash" w)
            true (List.mem w present_words))
      !acked_adds;
    (* (b) acknowledged deletes stay deleted. *)
    List.iter
      (fun w ->
        Alcotest.(check bool)
          (Printf.sprintf "acked delete of %s honored" w)
          false (List.mem w present_words))
      !acked_dels;
    (* (c) nothing torn or invented: every recovered doc was an
       attempted add with exactly these tokens. *)
    for id = 0 to n - 1 do
      let d = Pj_index.Corpus.document corpus id in
      let vocab = Pj_index.Corpus.vocab corpus in
      let words =
        Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens
      in
      Alcotest.(check bool)
        (Printf.sprintf "doc %d is an attempted add, untorn" id)
        true
        (Array.length words = 3
        && words.(0) = "aa" && words.(2) = "bb"
        && Hashtbl.mem attempted_adds words.(1))
    done;
    (* Byte-identical to a from-scratch index over the recovered
       state. *)
    let oracle = Live_index.create () in
    for id = 0 to n - 1 do
      let d = Pj_index.Corpus.document corpus id in
      let vocab = Pj_index.Corpus.vocab corpus in
      ignore
        (Live_index.add oracle
           (Array.map (Pj_text.Vocab.word vocab) d.Pj_text.Document.tokens))
    done;
    for id = 0 to n - 1 do
      if not (List.mem id present) then
        match Live_index.delete oracle id with
        | Ok () | Error `Not_found -> ()
    done;
    Alcotest.(check bool) "recovered hits = from-scratch hits" true
      (hits live = hits oracle);
    Live_index.close oracle;
    (* The recovered state is the new ground truth. *)
    acked_adds := present_words;
    acked_dels := [];
    attempted_dels := [];
    (* New epoch: random ops under randomly armed kill points. *)
    for _op = 1 to 8 do
      let armed =
        if Random.State.int rng 10 < 4 then begin
          let s = sites.(Random.State.int rng (Array.length sites)) in
          Pj_util.Failpoint.arm s Pj_util.Failpoint.Fail;
          Some s
        end
        else None
      in
      (match Random.State.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 | 5 -> begin
          let w = fresh_word () in
          Hashtbl.replace attempted_adds w ();
          match Live_index.add live [| "aa"; w; "bb" |] with
          | _ -> acked_adds := w :: !acked_adds
          | exception _ -> ()
        end
      | 6 | 7 -> begin
          let ids =
            List.map (fun h -> h.Pj_engine.Searcher.doc_id) (hits live)
          in
          match ids with
          | [] -> ()
          | _ -> begin
              let id = List.nth ids (Random.State.int rng (List.length ids)) in
              let w = word_of id in
              attempted_dels := w :: !attempted_dels;
              match Live_index.delete live id with
              | Ok () -> acked_dels := w :: !acked_dels
              | Error `Not_found -> ()
              | exception _ -> ()
            end
        end
      | _ -> ( try ignore (Live_index.flush live) with _ -> ()));
      match armed with Some _ -> Pj_util.Failpoint.clear () | None -> ()
    done
    (* crash: abandon [live] without close or flush *)
  done;
  Pj_util.Failpoint.clear ()

let suite =
  [
    Alcotest.test_case "roundtrip is byte-identical" `Quick test_roundtrip;
    Alcotest.test_case "flush is the durability barrier" `Quick
      test_flush_is_the_durability_barrier;
    Alcotest.test_case "deletes persist via manifest-only flush" `Quick
      test_deletes_durable_via_manifest_only_flush;
    Alcotest.test_case "orphan files cleaned at open" `Quick
      test_orphan_cleanup;
    Alcotest.test_case "mmap-served segments recover identically" `Quick
      test_mmap_recovery_identical;
    Alcotest.test_case "v1 segment files still load" `Quick
      test_v1_segments_still_load;
    Alcotest.test_case "mmap open failure falls back to heap rebuild" `Quick
      test_mmap_open_failure_falls_back;
    Alcotest.test_case "wal recovers unflushed writes" `Quick
      test_wal_recovers_unflushed;
    Alcotest.test_case "wal rotates across flushes" `Quick
      test_wal_rotation_across_flushes;
    Alcotest.test_case "wal torn tail discarded" `Quick
      test_wal_torn_tail_discarded;
    Alcotest.test_case "wal corrupt record stops replay" `Quick
      test_wal_corrupt_record_stops_replay;
    Alcotest.test_case "wal crash at every failpoint site" `Quick
      test_wal_crash_sites;
    Alcotest.test_case "disabling the wal retires the log" `Quick
      test_wal_disabled_removes_log;
    Alcotest.test_case "tmp cleanup without a manifest" `Quick
      test_tmp_cleanup_without_manifest;
    Alcotest.test_case "wal chaos oracle" `Quick test_wal_chaos_oracle;
  ]
