(* Chaos suite: randomized failpoint schedules against a live socket
   server. The properties under test are the serving contract of the
   degradation work, not any particular scheduling of faults:

   - never hang: every request gets a response line (or a clean
     disconnect) within a bounded time, whatever is armed;
   - never crash: the server survives injected errors, delays and
     worker panics, and keeps accepting connections;
   - honesty: responses are only ever HITS / OK-DEGRADED / TIMEOUT /
     BUSY / ERR, and once the faults are cleared, every query answers
     byte-identically to the fault-free run — which also proves no
     degraded or timed-out response was ever cached, and that panicked
     worker domains were respawned to full strength.

   The schedule PRNG is seeded from $CHAOS_SEED when set (the CI chaos
   job passes a fresh one per run and logs it), else a fixed default —
   so any failure is reproducible by exporting the printed seed. *)

open Pj_server

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> failwith (Printf.sprintf "bad $CHAOS_SEED %S" s))
  | None -> 20260805

let () = Printf.printf "[chaos] seed = %d (export CHAOS_SEED to vary)\n%!" seed

(* --- the served corpus: same build as `proxjoin serve` ------------- *)

let texts =
  [
    "lenovo signs a partnership with the nba this season";
    "the nba expanded its partnership program with dell";
    "unrelated document about gardening and weather";
    "lenovo mentioned briefly and much later a partnership of others";
    "dell and lenovo compete for the nba partnership deal";
    "nba nba nba partnership partnership lenovo at the end";
    "a partnership between gardeners and the weather service";
    "lenovo dell nba partnership all adjacent here";
    "the weather service mentioned the nba in passing yesterday";
    "dell partnership rumors dominate the gardening forum somehow";
  ]

let build () =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun text ->
      let stems =
        Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)
      in
      ignore (Pj_index.Corpus.add_tokens corpus stems))
    texts;
  (corpus, Pj_ontology.Mini_wordnet.create ())

let n_shards = 3

let with_server ?(config = Server.default_config) f =
  Pj_util.Failpoint.clear ();
  let corpus, graph = build () in
  let sharded =
    Pj_engine.Shard_searcher.create
      (Pj_index.Sharded_index.build ~shards:n_shards corpus)
  in
  let server =
    Server.start ~config ~graph (Worker_pool.of_shard_searcher sharded)
  in
  Fun.protect
    ~finally:(fun () ->
      Pj_util.Failpoint.clear ();
      Server.stop server)
    (fun () -> f server)

let queries =
  [
    "SEARCH win 0.2 5 exact:lenovo exact:nba exact:partnership";
    "SEARCH med 0.1 3 exact:lenovo exact:partnership";
    "SEARCH max 0.1 10 exact:dell exact:nba";
    "SEARCH win 0.5 2 exact:partnership exact:weather";
    "SEARCH win 0.2 5 stem:gardening";
    "SEARCH med 0.3 4 exact:nba exact:partnership";
  ]

(* --- a client that can prove it never hung ------------------------- *)

let hang_timeout_s = 10.

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* A read that sits longer than this is the hang the suite exists to
     catch; it surfaces as an error after [hang_timeout_s], below. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO hang_timeout_s;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* One request/response; [`Gone] is a clean teardown (the server.conn
   failpoint or a force-close kills connections mid-request, which is
   within contract), [`Hung] is the contract violation. *)
let request conn line =
  let t0 = Pj_util.Timing.monotonic_now () in
  match
    output_string conn.oc line;
    output_char conn.oc '\n';
    flush conn.oc;
    input_line conn.ic
  with
  | response -> `Response response
  | exception (End_of_file | Sys_error _) ->
      if Pj_util.Timing.monotonic_now () -. t0 >= hang_timeout_s -. 0.5 then
        `Hung
      else `Gone

let expect_response conn line =
  match request conn line with
  | `Response r -> r
  | `Hung -> Alcotest.failf "hung on %S" line
  | `Gone -> Alcotest.failf "connection dropped on %S" line

let valid_response r =
  List.exists
    (fun p -> String.length r >= String.length p && String.sub r 0 (String.length p) = p)
    [ "HITS "; "OK-DEGRADED "; "TIMEOUT"; "BUSY"; "ERR "; "PONG" ]

(* Fault-free expected lines, captured over the wire before any rule is
   armed — the recovery oracle. *)
let baseline server =
  let conn = connect (Server.port server) in
  Fun.protect
    ~finally:(fun () -> close conn)
    (fun () -> List.map (fun q -> (q, expect_response conn q)) queries)

let stats_field line key =
  (* "worker_respawns=3" somewhere in a key=value STATS line. *)
  let needle = key ^ "=" in
  let n = String.length needle and len = String.length line in
  let rec find i =
    if i + n > len then None
    else if String.sub line i n = needle then begin
      let j = ref (i + n) in
      while !j < len && line.[!j] <> ' ' do
        incr j
      done;
      int_of_string_opt (String.sub line (i + n) (!j - i - n))
    end
    else find (i + 1)
  in
  find 0

(* --- 1. randomized schedules ---------------------------------------- *)

let random_schedule rng =
  let open Pj_util.Failpoint in
  let candidates =
    [
      (fun () ->
        { site = Printf.sprintf "shard.%d" (Pj_util.Prng.int rng n_shards);
          action = Fail; prob = 1. });
      (fun () ->
        { site = Printf.sprintf "shard.%d" (Pj_util.Prng.int rng n_shards);
          action = Delay (0.005 +. Pj_util.Prng.float rng 0.03); prob = 1. });
      (fun () -> { site = "worker.job"; action = Fail; prob = 0.3 });
      (fun () -> { site = "worker.job"; action = Panic; prob = 0.15 });
      (fun () -> { site = "server.conn"; action = Fail; prob = 0.1 });
    ]
  in
  let n_rules = 1 + Pj_util.Prng.int rng 3 in
  List.init n_rules (fun _ ->
      (List.nth candidates (Pj_util.Prng.int rng (List.length candidates))) ())

let test_randomized_schedules () =
  with_server (fun server ->
      let expected = baseline server in
      let port = Server.port server in
      let rng = Pj_util.Prng.create seed in
      let violations = ref [] in
      let violations_mutex = Mutex.create () in
      let violation fmt =
        Printf.ksprintf
          (fun msg ->
            Mutex.lock violations_mutex;
            violations := msg :: !violations;
            Mutex.unlock violations_mutex)
          fmt
      in
      let rounds = 6 and clients = 3 and per_client = 12 in
      for round = 0 to rounds - 1 do
        let rules = random_schedule rng in
        Pj_util.Failpoint.configure ~seed:(seed + (1000 * round)) rules;
        let client id =
          let conn = ref (connect port) in
          for i = 0 to per_client - 1 do
            let q = List.nth queries ((id + i + round) mod List.length queries) in
            match request !conn q with
            | `Response r ->
                if not (valid_response r) then
                  violation "round %d: invalid response %S to %S" round r q
            | `Gone ->
                (* Within contract: reconnect and continue. *)
                close !conn;
                conn := connect port
            | `Hung -> violation "round %d: hang on %S" round q
          done;
          close !conn
        in
        let threads = List.init clients (fun id -> Thread.create client id) in
        List.iter Thread.join threads
      done;
      (* Recovery: with everything cleared, the server must answer every
         query byte-identically to the fault-free run — proving no
         degraded/timed-out response was cached and the worker pool is
         back at full strength. *)
      Pj_util.Failpoint.clear ();
      let conn = connect port in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          Alcotest.(check string) "liveness after chaos" "PONG"
            (expect_response conn "PING");
          List.iter
            (fun (q, want) ->
              Alcotest.(check string)
                (Printf.sprintf "post-chaos %S" q)
                want (expect_response conn q))
            expected);
      match !violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%d contract violations, e.g. %s (seed %d)"
            (List.length !violations) v seed)

(* --- 2. degraded responses: flagged, honest, never cached ----------- *)

let test_degraded_flagged_and_uncached () =
  with_server (fun server ->
      let expected = baseline server in
      (* From here the cache holds complete answers; killing a shard
         must bypass them... so drop them first to force live searches. *)
      Result_cache.clear (Server.cache server);
      Pj_util.Failpoint.arm "shard.1" Pj_util.Failpoint.Fail;
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          List.iter
            (fun (q, _) ->
              let r = expect_response conn q in
              Alcotest.(check bool)
                (Printf.sprintf "degraded and names shard 1: %S" r)
                true
                (String.length r >= 20
                && String.sub r 0 20 = "OK-DEGRADED shards=1"))
            expected;
          let _, _, len = Result_cache.stats (Server.cache server) in
          Alcotest.(check int) "no degraded response cached" 0 len;
          (* Heal the shard: the same queries answer complete again —
             and would not, had the degraded lines been cached. *)
          Pj_util.Failpoint.clear ();
          List.iter
            (fun (q, want) ->
              Alcotest.(check string)
                (Printf.sprintf "healed %S" q)
                want (expect_response conn q))
            expected;
          let stats = expect_response conn "STATS" in
          Alcotest.(check (option int))
            "every degraded response counted"
            (Some (List.length expected))
            (stats_field stats "degraded");
          Alcotest.(check (option int))
            "one failed leg each"
            (Some (List.length expected))
            (stats_field stats "shard_failures")))

(* --- 3. worker kill: detected, counted, respawned ------------------- *)

let test_worker_kill_respawns () =
  with_server (fun server ->
      let expected = baseline server in
      Result_cache.clear (Server.cache server);
      Pj_util.Failpoint.arm "worker.job" Pj_util.Failpoint.Panic;
      let conn = connect (Server.port server) in
      Fun.protect
        ~finally:(fun () -> close conn)
        (fun () ->
          (let r = expect_response conn (fst (List.hd expected)) in
           Alcotest.(check bool)
             (Printf.sprintf "panic surfaced as ERR: %S" r)
             true
             (String.length r >= 10 && String.sub r 0 10 = "ERR worker"));
          Pj_util.Failpoint.clear ();
          (* Full strength within one respawn cycle: the killed domain
             is joined and replaced, then every query serves again. *)
          let deadline = Pj_util.Timing.monotonic_now () +. 5. in
          let respawned () =
            match stats_field (Server.stats_line server) "worker_respawns" with
            | Some n -> n >= 1
            | None -> false
          in
          while (not (respawned ())) && Pj_util.Timing.monotonic_now () < deadline do
            Thread.delay 0.01
          done;
          Alcotest.(check bool) "respawn counted" true (respawned ());
          Alcotest.(check (option int))
            "panic counted" (Some 1)
            (stats_field (Server.stats_line server) "worker_panics");
          List.iter
            (fun (q, want) ->
              Alcotest.(check string)
                (Printf.sprintf "post-respawn %S" q)
                want (expect_response conn q))
            expected))

(* --- 4. graceful drain: stop under load flushes in-flight ----------- *)

let test_drain_under_load () =
  let config = { Server.default_config with drain_s = 5. } in
  with_server ~config (fun server ->
      let expected = baseline server in
      Result_cache.clear (Server.cache server);
      (* The handler for [baseline]'s last query decrements the
         in-flight count *after* flushing its response, so it can still
         be >0 here; wait it down to zero so the poll below can only be
         satisfied by the new client's request. *)
      let settle = Pj_util.Timing.monotonic_now () +. 2. in
      while Server.inflight server > 0 && Pj_util.Timing.monotonic_now () < settle
      do
        Thread.delay 0.002
      done;
      Alcotest.(check int) "baseline requests retired" 0 (Server.inflight server);
      (* Every shard leg sleeps, so the request is reliably in flight
         when stop begins; the drain must still flush its response. *)
      Pj_util.Failpoint.arm "shard.*" (Pj_util.Failpoint.Delay 0.2);
      let q, want = List.hd expected in
      let got = ref `Hung in
      let client =
        Thread.create
          (fun () ->
            let conn = connect (Server.port server) in
            Fun.protect
              ~finally:(fun () -> close conn)
              (fun () -> got := request conn q))
          ()
      in
      (* Let the request get read off the socket, then stop mid-flight. *)
      let deadline = Pj_util.Timing.monotonic_now () +. 2. in
      while Server.inflight server = 0 && Pj_util.Timing.monotonic_now () < deadline
      do
        Thread.delay 0.005
      done;
      Alcotest.(check bool) "request is in flight" true (Server.inflight server > 0);
      Server.stop server;
      Thread.join client;
      match !got with
      | `Response r -> Alcotest.(check string) "drained response" want r
      | `Gone -> Alcotest.fail "in-flight request lost by stop"
      | `Hung -> Alcotest.fail "in-flight request hung through stop")

(* --- 5. live index: every live.* failpoint fails cleanly, recovery
       replays exactly the last durable generation --------------------- *)

let stems text =
  Array.map Pj_text.Porter.stem (Pj_text.Tokenizer.tokenize_array text)

let live_scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2)

let live_query =
  let table word weight = [ (Pj_text.Porter.stem word, weight) ] in
  Pj_matching.Query.make "chaos-live"
    [
      Pj_matching.Matcher.of_table ~name:"t1" (table "lenovo" 1.0);
      Pj_matching.Matcher.of_table ~name:"t2" (table "nba" 1.0);
      Pj_matching.Matcher.of_table ~name:"t3" (table "partnership" 0.8);
    ]

let live_hits live = Pj_live.Live_index.search ~k:10 live live_scoring live_query

let live_config =
  {
    Pj_live.Live_index.default_config with
    memtable_capacity = 2;
    merge_threshold = 2;
    background_merge = false;
  }

let fresh_live_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pj-chaos-live-%d-%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let expect_injected site f =
  match f () with
  | _ -> Alcotest.failf "%s: operation succeeded with failpoint armed" site
  | exception Pj_util.Failpoint.Injected s ->
      Alcotest.(check string)
        (Printf.sprintf "%s: failure names the site" site)
        site s

let test_live_failpoints_recover () =
  let strong = stems "lenovo nba partnership lenovo nba partnership" in
  let provocations =
    [
      (* A failed memtable seal: the segment file never lands. *)
      ( "live.flush",
        fun live ->
          ignore (Pj_live.Live_index.add live strong);
          ignore (Pj_live.Live_index.flush live) );
      (* The segment lands but the manifest write dies: the orphan
         segment must be invisible (and cleaned up) on recovery. *)
      ( "live.manifest",
        fun live ->
          ignore (Pj_live.Live_index.add live strong);
          ignore (Pj_live.Live_index.flush live) );
      (* A failed compaction: the pre-merge snapshot stays published. *)
      ("live.merge", fun live -> ignore (Pj_live.Live_index.merge_now live));
    ]
  in
  List.iter
    (fun (site, provoke) ->
      Pj_util.Failpoint.clear ();
      let dir = fresh_live_dir () in
      Fun.protect
        ~finally:(fun () ->
          Pj_util.Failpoint.clear ();
          rm_rf dir)
        (fun () ->
          (* Ten documents, auto-flushed in pairs: five durable
             segments, an empty memtable, more segments than the merge
             policy tolerates. *)
          let live = Pj_live.Live_index.open_dir ~config:live_config dir in
          List.iter
            (fun text -> ignore (Pj_live.Live_index.add live (stems text)))
            texts;
          ignore (Pj_live.Live_index.flush live);
          let durable = live_hits live in
          Alcotest.(check bool)
            (Printf.sprintf "%s: baseline finds documents" site)
            true
            (durable <> []);
          Pj_util.Failpoint.arm site Pj_util.Failpoint.Fail;
          expect_injected site (fun () -> provoke live);
          (* The in-memory index survives the failure and keeps
             serving a coherent snapshot. *)
          let after_failure = live_hits live in
          Alcotest.(check bool)
            (Printf.sprintf "%s: still serves after failure" site)
            true
            (after_failure <> []);
          if site <> "live.merge" then
            (* The provoked add is visible in memory even though its
               flush died — readers never see a torn state. *)
            Alcotest.(check bool)
              (Printf.sprintf "%s: unflushed add visible in memory" site)
              true
              (after_failure <> durable);
          Pj_util.Failpoint.clear ();
          (* Crash: abandon the instance without flushing. Recovery
             must replay exactly the last durable generation — the
             unflushed add is gone, the failed merge left no trace. *)
          Pj_live.Live_index.close live;
          let recovered = Pj_live.Live_index.open_dir ~config:live_config dir in
          Fun.protect
            ~finally:(fun () -> Pj_live.Live_index.close recovered)
            (fun () ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: recovery = last durable generation" site)
                true
                (live_hits recovered = durable);
              let stats = Pj_live.Live_index.stats recovered in
              Alcotest.(check int)
                (Printf.sprintf "%s: all durable docs recovered" site)
                (List.length texts) stats.Pj_live.Live_index.docs;
              (* The site is healed: the same operation now succeeds
                 and becomes durable in turn. *)
              ignore (Pj_live.Live_index.add recovered strong);
              ignore (Pj_live.Live_index.flush recovered);
              ignore (Pj_live.Live_index.merge_now recovered);
              Alcotest.(check bool)
                (Printf.sprintf "%s: healed index ingests again" site)
                true
                (live_hits recovered <> durable))))
    provocations

(* --- 6. write-ahead log: crash at every WAL kill point, acknowledged
       writes always recover, unacknowledged ones never tear ---------- *)

let wal_live_config = { live_config with Pj_live.Live_index.wal = true }

let test_live_wal_failpoints_recover () =
  let strong = stems "lenovo nba partnership lenovo nba partnership" in
  (* [`Unacked]: the armed site makes the add itself fail — the doc was
     never acknowledged, so recovery must not contain it. [`Acked]: the
     add is acknowledged first and the armed site kills the *flush*
     mid-publication — the doc must survive recovery regardless of
     where the flush died (WAL replay or the manifest that landed). *)
  let sites =
    [
      ("live.wal.append", `Unacked);
      ("live.wal.fsync", `Unacked);
      ("live.wal.rotate", `Acked);
      ("live.flush", `Acked);
      ("live.manifest", `Acked);
    ]
  in
  List.iter
    (fun (site, mode) ->
      Pj_util.Failpoint.clear ();
      let dir = fresh_live_dir () in
      Fun.protect
        ~finally:(fun () ->
          Pj_util.Failpoint.clear ();
          rm_rf dir)
        (fun () ->
          let live = Pj_live.Live_index.open_dir ~config:wal_live_config dir in
          (* Eight acknowledged docs, auto-flushed in pairs: the log
             rotates at every seal along the way. *)
          List.iter
            (fun text -> ignore (Pj_live.Live_index.add live (stems text)))
            texts;
          let want, expected_docs =
            match mode with
            | `Unacked ->
                let want = live_hits live in
                Pj_util.Failpoint.arm site Pj_util.Failpoint.Fail;
                expect_injected site (fun () ->
                    ignore (Pj_live.Live_index.add live strong));
                (want, List.length texts)
            | `Acked ->
                (* Acknowledged but unflushed: durable only via the
                   log — until the flush below tries to seal it and
                   dies at [site]. *)
                ignore (Pj_live.Live_index.add live strong);
                let want = live_hits live in
                Pj_util.Failpoint.arm site Pj_util.Failpoint.Fail;
                expect_injected site (fun () ->
                    ignore (Pj_live.Live_index.flush live));
                (want, List.length texts + 1)
          in
          Pj_util.Failpoint.clear ();
          (* Crash: abandon the handle — no close, no final fsync.
             Everything acknowledged is already on disk. *)
          let recovered =
            Pj_live.Live_index.open_dir ~config:wal_live_config dir
          in
          Fun.protect
            ~finally:(fun () -> Pj_live.Live_index.close recovered)
            (fun () ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: acknowledged state recovered" site)
                true
                (live_hits recovered = want);
              let stats = Pj_live.Live_index.stats recovered in
              Alcotest.(check int)
                (Printf.sprintf "%s: exactly the acknowledged docs" site)
                expected_docs stats.Pj_live.Live_index.docs;
              Alcotest.(check int)
                (Printf.sprintf "%s: recovered state is durable" site)
                0 stats.Pj_live.Live_index.durable_lag;
              (* Healed: the same site now works and the write sticks
                 across one more crash. *)
              ignore (Pj_live.Live_index.add recovered strong);
              let richer = live_hits recovered in
              Alcotest.(check bool)
                (Printf.sprintf "%s: healed index ingests again" site)
                true (richer <> want);
              let again =
                Pj_live.Live_index.open_dir ~config:wal_live_config dir
              in
              Fun.protect
                ~finally:(fun () -> Pj_live.Live_index.close again)
                (fun () ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: post-heal write survives a crash"
                       site)
                    true
                    (live_hits again = richer)))))
    sites

let () =
  Alcotest.run "proxjoin.chaos"
    [
      ( "chaos",
        [
          ("chaos: randomized schedules", `Quick, test_randomized_schedules);
          ( "chaos: degraded flagged, never cached",
            `Quick,
            test_degraded_flagged_and_uncached );
          ("chaos: worker kill respawns", `Quick, test_worker_kill_respawns);
          ("chaos: drain under load", `Quick, test_drain_under_load);
          ( "chaos: live failpoints recover",
            `Quick,
            test_live_failpoints_recover );
          ( "chaos: wal kill points recover acknowledged writes",
            `Quick,
            test_live_wal_failpoints_recover );
        ] );
    ]
