(* Degradation oracle: with the shards in [kill] failing at entry
   (armed "shard.<i>" failpoints), [Shard_searcher.search_degraded]
   must return exactly the monolithic top-k over the surviving shards'
   doc ranges — same ids (mapped through the survivors' positions),
   same scores — and [failed] must list exactly the killed shards. *)

open Pj_engine

let rng = Pj_util.Prng.create 20260805

let alphabet = [| "aa"; "bb"; "cc"; "dd"; "ee" |]

let gen_docs () =
  List.init
    (Pj_util.Prng.int_in rng 6 30)
    (fun _ ->
      List.init
        (Pj_util.Prng.int_in rng 1 15)
        (fun _ -> Pj_util.Prng.choose rng alphabet))

let build docs =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun tokens ->
      ignore (Pj_index.Corpus.add_tokens corpus (Array.of_list tokens)))
    docs;
  corpus

let queries =
  [
    Pj_matching.Query.make "a" [ Pj_matching.Matcher.exact "aa" ];
    Pj_matching.Query.make "ab"
      [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ];
    Pj_matching.Query.make "abc"
      [
        Pj_matching.Matcher.exact "aa";
        Pj_matching.Matcher.exact "bb";
        Pj_matching.Matcher.exact "cc";
      ];
  ]

let scorings =
  [
    ("win", Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3));
    ("med", Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2));
    ("max", Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.25));
  ]

let far_deadline () = Pj_util.Timing.monotonic_now () +. 60.

(* The monolithic oracle over the survivors: a fresh corpus holding
   only the surviving shards' documents (in global id order), searched
   whole, with its local doc ids mapped back to global ones. Scores
   are bit-comparable because each document's tokens — hence its match
   positions and expansion scores — are unchanged. *)
let surviving_oracle docs sharded ~kill ~k scoring q =
  let keep = Array.make (List.length docs) false in
  for s = 0 to Pj_index.Sharded_index.n_shards sharded - 1 do
    if not (List.mem s kill) then begin
      let first, count = Pj_index.Sharded_index.range sharded s in
      for d = first to first + count - 1 do
        keep.(d) <- true
      done
    end
  done;
  let surviving_ids =
    List.filteri (fun i _ -> keep.(i)) (List.mapi (fun i _ -> i) docs)
  in
  let surviving_docs = List.filteri (fun i _ -> keep.(i)) docs in
  let id_of_local = Array.of_list surviving_ids in
  let mono =
    Searcher.create (Pj_index.Inverted_index.build (build surviving_docs))
  in
  Searcher.search ~k mono scoring q
  |> List.map (fun (h : Searcher.hit) ->
         (id_of_local.(h.Searcher.doc_id), h.Searcher.score))

let pp_pairs pairs =
  String.concat "; "
    (List.map (fun (d, s) -> Printf.sprintf "%d:%.17g" d s) pairs)

let check_case docs ~shards ~kill ~k (family, scoring) q =
  let corpus = build docs in
  let sharded_index = Pj_index.Sharded_index.build ~shards corpus in
  let sharded = Shard_searcher.create sharded_index in
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.configure
        (List.map
           (fun i ->
             {
               Pj_util.Failpoint.site = Printf.sprintf "shard.%d" i;
               action = Pj_util.Failpoint.Fail;
               prob = 1.0;
             })
           kill);
      match
        Shard_searcher.search_degraded ~k ~deadline:(far_deadline ()) sharded
          scoring q
      with
      | Error `Timeout -> Alcotest.fail "unexpected timeout"
      | Ok { Shard_searcher.hits; failed } ->
          Alcotest.(check (list int))
            (Printf.sprintf "S=%d kill=[%s] %s k=%d: failed list" shards
               (String.concat ","
                  (List.map string_of_int kill))
               family k)
            (List.sort compare kill) failed;
          let got =
            List.map
              (fun (h : Searcher.hit) -> (h.Searcher.doc_id, h.Searcher.score))
              hits
          in
          let want = surviving_oracle docs sharded_index ~kill ~k scoring q in
          if got <> want then
            Alcotest.failf
              "S=%d kill=[%s] %s k=%d:\nwant [%s]\ngot  [%s]" shards
              (String.concat "," (List.map string_of_int kill))
              family k (pp_pairs want) (pp_pairs got))

let test_oracle () =
  for _round = 1 to 12 do
    let docs = gen_docs () in
    List.iter
      (fun shards ->
        (* Every proper non-empty subset size: 1 .. shards-1 killed. *)
        List.iter
          (fun n_kill ->
            let all = List.init shards Fun.id in
            let arr = Array.of_list all in
            Pj_util.Prng.shuffle rng arr;
            let kill = Array.to_list (Array.sub arr 0 n_kill) in
            List.iter
              (fun sc ->
                List.iter
                  (fun q -> check_case docs ~shards ~kill ~k:5 sc q)
                  queries)
              scorings)
          (List.init (shards - 1) (fun i -> i + 1)))
      [ 2; 3; 5 ]
  done

let test_no_faults_is_byte_identical () =
  for _round = 1 to 8 do
    let docs = gen_docs () in
    let corpus = build docs in
    let sharded =
      Shard_searcher.create (Pj_index.Sharded_index.build ~shards:3 corpus)
    in
    List.iter
      (fun (family, scoring) ->
        List.iter
          (fun q ->
            let want =
              match
                Shard_searcher.search_within ~k:5 ~deadline:(far_deadline ())
                  sharded scoring q
              with
              | Ok hits -> hits
              | Error `Timeout -> Alcotest.fail "unexpected timeout"
            in
            match
              Shard_searcher.search_degraded ~k:5 ~deadline:(far_deadline ())
                sharded scoring q
            with
            | Error `Timeout -> Alcotest.fail "unexpected timeout"
            | Ok { Shard_searcher.hits; failed } ->
                Alcotest.(check (list int))
                  (family ^ ": nothing failed") [] failed;
                Alcotest.(check bool)
                  (family ^ ": structurally identical to search_within")
                  true (hits = want))
          queries)
      scorings
  done

let test_all_shards_dead () =
  let docs = gen_docs () in
  let corpus = build docs in
  let sharded =
    Shard_searcher.create (Pj_index.Sharded_index.build ~shards:3 corpus)
  in
  Fun.protect
    ~finally:(fun () -> Pj_util.Failpoint.clear ())
    (fun () ->
      Pj_util.Failpoint.arm "shard.*" Pj_util.Failpoint.Fail;
      match
        Shard_searcher.search_degraded ~k:5 ~deadline:(far_deadline ()) sharded
          (snd (List.hd scorings))
          (List.hd queries)
      with
      | Error `Timeout -> Alcotest.fail "raising shards are not a timeout"
      | Ok { Shard_searcher.hits; failed } ->
          Alcotest.(check (list int)) "all shards failed" [ 0; 1; 2 ] failed;
          Alcotest.(check int) "no hits survive" 0 (List.length hits))

let test_expired_deadline_times_out () =
  let docs = gen_docs () in
  let corpus = build docs in
  let sharded =
    Shard_searcher.create (Pj_index.Sharded_index.build ~shards:3 corpus)
  in
  (* A deadline in the past expires every shard: that degenerate case
     must surface as Timeout, exactly like the monolithic searcher. *)
  match
    Shard_searcher.search_degraded ~k:5
      ~deadline:(Pj_util.Timing.monotonic_now () -. 1.)
      sharded
      (snd (List.hd scorings))
      (List.hd queries)
  with
  | Error `Timeout -> ()
  | Ok _ -> Alcotest.fail "past deadline must time out"

let suite =
  [
    ("degraded: survivors = monolithic oracle", `Quick, test_oracle);
    ("degraded: fault-free path byte-identical", `Quick, test_no_faults_is_byte_identical);
    ("degraded: every shard dead", `Quick, test_all_shards_dead);
    ("degraded: all-expired is timeout", `Quick, test_expired_deadline_times_out);
  ]
