let () =
  Alcotest.run "proxjoin.engine"
    [
      ("idf", Test_idf.suite);
      ("searcher", Test_searcher.suite);
      ("accept", Test_accept.suite);
      ("search_oracle", Test_search_oracle.suite);
      ("shard_oracle", Test_shard_oracle.suite);
      ("degraded", Test_degraded.suite);
      ("daat_oracle", Test_daat_oracle.suite);
      ("blockmax_oracle", Test_blockmax_oracle.suite);
      ("snippet", Test_snippet.suite);
    ]
