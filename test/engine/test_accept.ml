(* [Searcher.search_fragment ?accept]: a rejected document must behave
   exactly as if its postings were absent — same hits, same scores,
   same matchsets as a from-scratch index that never contained it.
   This is the primitive the live index's tombstones stand on. *)

open Pj_engine

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3)

let query =
  Pj_matching.Query.make "ab"
    [
      Pj_matching.Matcher.of_table ~name:"t1" [ ("aa", 1.0); ("ab", 0.4) ];
      Pj_matching.Matcher.of_table ~name:"t2" [ ("bb", 0.9); ("ba", 0.3) ];
    ]

let docs =
  [
    [| "aa"; "bb"; "cc" |];
    [| "aa"; "cc"; "cc"; "bb" |];
    [| "ab"; "ba" |];
    [| "aa"; "bb" |];
    [| "cc"; "aa"; "ab"; "bb" |];
  ]

(* Shared vocabulary order so token ids (match payloads) line up
   between the full index and the one missing [rejected]. *)
let searcher_over ?(rejected = []) () =
  let corpus = Pj_index.Corpus.create () in
  let vocab = Pj_index.Corpus.vocab corpus in
  List.iter
    (fun d -> Array.iter (fun w -> ignore (Pj_text.Vocab.intern vocab w)) d)
    docs;
  List.iteri
    (fun id d ->
      ignore
        (Pj_index.Corpus.add_tokens corpus
           (if List.mem id rejected then [||] else d)))
    docs;
  Searcher.create (Pj_index.Inverted_index.build corpus)

let fragment_hits ?accept searcher ~k ~prune =
  match Searcher.search_fragment ?accept ~k ~prune searcher scoring query with
  | Ok hits -> hits
  | Error `Timeout -> Alcotest.fail "no deadline was given"

let test_accept_equals_absence () =
  let full = searcher_over () in
  List.iter
    (fun rejected ->
      let without = searcher_over ~rejected () in
      List.iter
        (fun k ->
          List.iter
            (fun prune ->
              let accept id = not (List.mem id rejected) in
              Alcotest.(check bool)
                (Printf.sprintf "rejected=[%s] k=%d prune=%b"
                   (String.concat "," (List.map string_of_int rejected))
                   k prune)
                true
                (fragment_hits ~accept full ~k ~prune
                = fragment_hits without ~k ~prune))
            [ true; false ])
        [ 1; 3; 10 ])
    [ [ 0 ]; [ 1 ]; [ 0; 3 ]; [ 0; 1; 3; 4 ] ]

let test_accept_none_is_identity () =
  let full = searcher_over () in
  Alcotest.(check bool) "no accept = accept everything" true
    (fragment_hits full ~k:10 ~prune:true
    = fragment_hits ~accept:(fun _ -> true) full ~k:10 ~prune:true)

let test_accept_nothing () =
  let full = searcher_over () in
  Alcotest.(check int) "reject all" 0
    (List.length (fragment_hits ~accept:(fun _ -> false) full ~k:10 ~prune:true))

let suite =
  [
    Alcotest.test_case "accept filter = document absence" `Quick
      test_accept_equals_absence;
    Alcotest.test_case "accept defaults to everything" `Quick
      test_accept_none_is_identity;
    Alcotest.test_case "accept nothing" `Quick test_accept_nothing;
  ]
