(* Block-max candidate generation must be lossless: for every corpus
   layout, scoring family, k, and prune setting, [search ~blockmax:true]
   returns hits byte-identical (doc ids, float score bits, matchsets)
   to the exhaustive [~blockmax:false] traversal — monolithic and
   sharded alike.

   Corpora are big enough (hundreds of documents) that posting lists
   span several 128-posting blocks, so next-shallow region skips and
   essential-form demotion genuinely fire. Three layouts stress
   different skip patterns:

   - [Uniform]: weak (low-score, dense) and strong (high-score, sparse)
     forms spread evenly — the weak forms should stop driving the
     alignment everywhere once the heap fills.
   - [Quality_ordered]: strong forms concentrated in low doc ids, as
     after a quality-ordering doc-id assignment — the tail of the scan
     is all-skippable regions.
   - [Impact_skewed]: heavy term repetition in a few documents, so
     per-block quantized impact ceilings vary block to block.

   Each seed is printed before it runs; to replay one, set
   $BLOCKMAX_SEED. *)

open Pj_engine

type layout = Uniform | Quality_ordered | Impact_skewed

let layout_name = function
  | Uniform -> "uniform"
  | Quality_ordered -> "quality-ordered"
  | Impact_skewed -> "impact-skewed"

(* Strong forms are sparse and high-score, weak forms dense and
   low-score; the stopwords appear in (almost) every document. *)
let strong = [| "s1"; "s2"; "s3" |]
let weak = [| "w1"; "w2"; "w3" |]
let stop = [| "the"; "of" |]

let random_doc rng layout ~doc ~n_docs =
  let out = Pj_util.Vec.create () in
  let emit w = Pj_util.Vec.push out w in
  Array.iter emit stop;
  let strong_p =
    match layout with
    | Uniform | Impact_skewed -> 0.05
    | Quality_ordered ->
        (* Decaying with doc id: the early range is strong-dense, the
           tail nearly strong-free. *)
        0.25 *. (1. -. (float_of_int doc /. float_of_int n_docs))
  in
  Array.iter
    (fun w ->
      if Pj_util.Prng.float rng 1. < strong_p then begin
        emit w;
        if layout = Impact_skewed && Pj_util.Prng.int rng 4 = 0 then
          (* tf spikes: repeated occurrences lift this block's
             quantized impact ceiling without changing any form score *)
          for _ = 1 to 1 + Pj_util.Prng.int rng 6 do
            emit w
          done
      end)
    strong;
  Array.iter
    (fun w -> if Pj_util.Prng.float rng 1. < 0.85 then emit w)
    weak;
  let a = Pj_util.Vec.to_array out in
  Pj_util.Prng.shuffle rng a;
  a

let build_corpus rng layout ~n_docs =
  let corpus = Pj_index.Corpus.create () in
  for doc = 0 to n_docs - 1 do
    ignore
      (Pj_index.Corpus.add_tokens corpus (random_doc rng layout ~doc ~n_docs))
  done;
  corpus

(* Mixed strong/weak expansion tables, so each term bank holds cursors
   whose scores differ by enough for essential-form demotion to bite;
   plus the all-stopword query, whose lists are one dense block run
   with nothing skippable — the degenerate case the in-memory block
   bounds used to get wrong. *)
let queries =
  [
    Pj_matching.Query.make "mixed"
      [
        Pj_matching.Matcher.of_table ~name:"t1" [ ("s1", 1.0); ("w1", 0.35) ];
        Pj_matching.Matcher.of_table ~name:"t2"
          [ ("s2", 0.9); ("w2", 0.3); ("w3", 0.25) ];
      ];
    Pj_matching.Query.make "strong-weak-stop"
      [
        Pj_matching.Matcher.of_table ~name:"t1" [ ("s3", 0.8); ("w1", 0.3) ];
        Pj_matching.Matcher.exact ~score:0.2 "the";
      ];
    Pj_matching.Query.make "all-stopword"
      [
        Pj_matching.Matcher.exact ~score:0.5 "the";
        Pj_matching.Matcher.exact ~score:0.4 "of";
      ];
  ]

let scorings =
  [
    Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2);
    Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2);
    Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.2);
  ]

(* 100_000 exceeds every corpus size: the k > corpus arm, where the
   heap never fills and only the shared-threshold prunes could fire. *)
let ks = [ 1; 3; 10; 100_000 ]

let hit_equal (a : Searcher.hit) (b : Searcher.hit) =
  a.Searcher.doc_id = b.Searcher.doc_id
  && Int64.equal
       (Int64.bits_of_float a.Searcher.score)
       (Int64.bits_of_float b.Searcher.score)
  && a.Searcher.matchset = b.Searcher.matchset

let hits_equal a b = List.length a = List.length b && List.for_all2 hit_equal a b

let pp_hits hits =
  String.concat ","
    (List.map
       (fun (h : Searcher.hit) ->
         Printf.sprintf "%d:%.17g" h.Searcher.doc_id h.Searcher.score)
       hits)

let check_layout seed layout =
  let rng = Pj_util.Prng.create seed in
  let n_docs = 350 + Pj_util.Prng.int rng 300 in
  let corpus = build_corpus rng layout ~n_docs in
  let searcher = Searcher.create (Pj_index.Inverted_index.build corpus) in
  let sharded =
    Shard_searcher.create (Pj_index.Sharded_index.build ~shards:3 corpus)
  in
  List.iter
    (fun q ->
      List.iter
        (fun scoring ->
          List.iter
            (fun k ->
              List.iter
                (fun prune ->
                  let want =
                    Searcher.search ~k ~prune ~blockmax:false searcher scoring
                      q
                  in
                  let got =
                    Searcher.search ~k ~prune ~blockmax:true searcher scoring q
                  in
                  if not (hits_equal got want) then
                    Alcotest.failf
                      "seed %d %s %s %s k=%d prune=%b: blockmax differs\n\
                       blockmax:   %s\n\
                       exhaustive: %s"
                      seed (layout_name layout) q.Pj_matching.Query.label
                      (Pj_core.Scoring.name scoring)
                      k prune (pp_hits got) (pp_hits want);
                  let got_sharded =
                    Shard_searcher.search ~k ~prune ~blockmax:true sharded
                      scoring q
                  in
                  if not (hits_equal got_sharded want) then
                    Alcotest.failf
                      "seed %d %s %s %s k=%d prune=%b: sharded blockmax \
                       differs\nsharded:    %s\nexhaustive: %s"
                      seed (layout_name layout) q.Pj_matching.Query.label
                      (Pj_core.Scoring.name scoring)
                      k prune (pp_hits got_sharded) (pp_hits want))
                [ true; false ])
            ks)
        scorings)
    queries

let seeds () =
  match Sys.getenv_opt "BLOCKMAX_SEED" with
  | Some s -> [ int_of_string s ]
  | None -> [ 7; 1234 ]

let run_seed seed =
  Printf.printf "blockmax oracle seed %d (replay: BLOCKMAX_SEED=%d)\n%!" seed
    seed;
  List.iter (check_layout seed) [ Uniform; Quality_ordered; Impact_skewed ]

let test_oracle () = List.iter run_seed (seeds ())

(* --- deadline regression (satellite of the block-max change) ----------- *)

(* A deadline already in the past must time out even when every
   candidate would be region-skipped: the skip loop itself checks the
   clock, so the overrun stays bounded by one round instead of one full
   traversal of a long posting list. *)
let test_deadline_in_skip_loop () =
  let corpus = Pj_index.Corpus.create () in
  (* One long conjunction: every document matches both terms, with a
     high-score rarity at the very end so pruning cannot stop early on
     its own. *)
  for doc = 0 to 4_999 do
    let toks = if doc >= 4_998 then [| "aa"; "bb"; "zz" |] else [| "aa"; "bb" |] in
    ignore (Pj_index.Corpus.add_tokens corpus toks)
  done;
  let searcher = Searcher.create (Pj_index.Inverted_index.build corpus) in
  let q =
    Pj_matching.Query.make "long"
      [
        Pj_matching.Matcher.of_table ~name:"t1" [ ("zz", 1.0); ("aa", 0.01) ];
        Pj_matching.Matcher.exact ~score:0.5 "bb";
      ]
  in
  let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2) in
  List.iter
    (fun blockmax ->
      match
        Searcher.search_within ~k:1 ~blockmax
          ~deadline:(Pj_util.Timing.monotonic_now () -. 1e-6)
          searcher scoring q
      with
      | Error `Timeout -> ()
      | Ok _ ->
          Alcotest.failf "blockmax=%b: expired deadline did not time out"
            blockmax)
    [ true; false ]

let suite =
  [
    ( "blockmax = exhaustive, all layouts/families/ks",
      `Quick,
      test_oracle );
    ("expired deadline times out in the skip loop", `Quick, test_deadline_in_skip_loop);
  ]
