(* The DAAT cursor searcher must return byte-identical hit lists (doc
   ids, scores, order) to the pre-change set-intersection searcher, the
   implementation this file preserves as the reference. Exercised over
   randomized corpora, all three scoring families, multi-form matchers
   (so the per-term cursor is a genuine union), and k in {0, 1, 10,
   1000}. *)

open Pj_engine

(* --- the pre-change searcher, verbatim semantics ----------------------- *)

module Iset = Set.Make (Int)

let naive_term_doc_ids idx (m : Pj_matching.Matcher.t) =
  match m.Pj_matching.Matcher.expansions with
  | None -> assert false
  | Some expansions ->
      List.fold_left
        (fun acc (form, _) ->
          let pl = Pj_index.Inverted_index.postings_of_word idx form in
          Pj_index.Posting_list.fold
            (fun acc p -> Iset.add p.Pj_index.Posting.doc_id acc)
            acc pl)
        Iset.empty expansions

let naive_candidates idx (q : Pj_matching.Query.t) =
  let sets = Array.map (naive_term_doc_ids idx) q.Pj_matching.Query.matchers in
  let smallest =
    Array.fold_left
      (fun acc s -> if Iset.cardinal s < Iset.cardinal acc then s else acc)
      sets.(0) sets
  in
  let all =
    Iset.filter
      (fun doc -> Array.for_all (fun s -> Iset.mem doc s) sets)
      smallest
  in
  Array.of_list (Iset.elements all)

let naive_search ~k idx scoring q =
  let heap =
    Pj_util.Heap.create ~leq:(fun (a : Searcher.hit) b ->
        match compare b.Searcher.score a.Searcher.score with
        | 0 -> a.Searcher.doc_id <= b.Searcher.doc_id
        | c -> c <= 0)
  in
  Array.iter
    (fun doc_id ->
      let problem = Pj_matching.Match_builder.from_index idx ~doc_id q in
      match Pj_core.Best_join.solve ~dedup:true scoring problem with
      | None -> ()
      | Some r ->
          let hit =
            {
              Searcher.doc_id;
              score = r.Pj_core.Naive.score;
              matchset = r.Pj_core.Naive.matchset;
            }
          in
          if Pj_util.Heap.length heap < k then Pj_util.Heap.push heap hit
          else begin
            match Pj_util.Heap.peek heap with
            | Some weakest
              when hit.Searcher.score > weakest.Searcher.score
                   || (hit.Searcher.score = weakest.Searcher.score
                      && hit.Searcher.doc_id < weakest.Searcher.doc_id) ->
                ignore (Pj_util.Heap.pop heap);
                Pj_util.Heap.push heap hit
            | Some _ | None -> ()
          end)
    (naive_candidates idx q);
  let out = ref [] in
  let rec drain () =
    match Pj_util.Heap.pop heap with
    | Some h ->
        out := h :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  !out

(* --- randomized corpora and queries ------------------------------------ *)

let vocab =
  [| "aa"; "bb"; "cc"; "dd"; "ee"; "x0"; "x1"; "x2"; "x3"; "x4"; "x5" |]

let random_corpus rng =
  let corpus = Pj_index.Corpus.create () in
  let n_docs = 1 + Pj_util.Prng.int rng 25 in
  for _ = 1 to n_docs do
    let len = 1 + Pj_util.Prng.int rng 18 in
    let tokens = Array.init len (fun _ -> Pj_util.Prng.choose rng vocab) in
    ignore (Pj_index.Corpus.add_tokens corpus tokens)
  done;
  corpus

(* Multi-form tables make each term cursor a union of several posting
   lists with distinct scores; the third query drops to two terms to
   vary the intersection arity. *)
let queries =
  [
    Pj_matching.Query.make "three terms"
      [
        Pj_matching.Matcher.of_table ~name:"t1" [ ("aa", 1.); ("bb", 0.6) ];
        Pj_matching.Matcher.of_table ~name:"t2" [ ("cc", 0.9); ("dd", 0.5) ];
        Pj_matching.Matcher.exact "ee";
      ];
    Pj_matching.Query.make "two terms"
      [
        Pj_matching.Matcher.of_table ~name:"t1"
          [ ("aa", 1.); ("bb", 0.6); ("ee", 0.3) ];
        Pj_matching.Matcher.of_table ~name:"t2" [ ("cc", 0.9); ("dd", 0.9) ];
      ];
  ]

let scorings =
  [
    Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2);
    Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2);
    Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.2);
  ]

let ks = [ 0; 1; 10; 1000 ]

let hit_repr (h : Searcher.hit) = (h.Searcher.doc_id, h.Searcher.score)

let test_daat_equals_naive () =
  let rng = Pj_util.Prng.create 71 in
  for trial = 1 to 60 do
    let corpus = random_corpus rng in
    let idx = Pj_index.Inverted_index.build corpus in
    let s = Searcher.create idx in
    List.iter
      (fun q ->
        List.iter
          (fun scoring ->
            List.iter
              (fun k ->
                let expected = List.map hit_repr (naive_search ~k idx scoring q) in
                let pruned =
                  List.map hit_repr (Searcher.search ~k ~prune:true s scoring q)
                in
                let unpruned =
                  List.map hit_repr (Searcher.search ~k ~prune:false s scoring q)
                in
                (* Scores stem from identical Best_join.solve calls, so
                   equality is exact, not approximate. *)
                if pruned <> expected then
                  Alcotest.failf
                    "trial %d %s %s k=%d: pruned DAAT differs from naive"
                    trial q.Pj_matching.Query.label
                    (Pj_core.Scoring.name scoring)
                    k;
                if unpruned <> expected then
                  Alcotest.failf
                    "trial %d %s %s k=%d: unpruned DAAT differs from naive"
                    trial q.Pj_matching.Query.label
                    (Pj_core.Scoring.name scoring)
                    k)
              ks)
          scorings)
      queries
  done

(* The DAAT candidate stream must equal the set intersection wherever
   the latter is defined (at least one matcher). *)
let test_candidates_equal () =
  let rng = Pj_util.Prng.create 97 in
  for _ = 1 to 60 do
    let corpus = random_corpus rng in
    let idx = Pj_index.Inverted_index.build corpus in
    let s = Searcher.create idx in
    List.iter
      (fun q ->
        Alcotest.(check (array int))
          "candidates" (naive_candidates idx q)
          (Searcher.candidates s q))
      queries
  done

let suite =
  [
    ("daat = naive searcher, all families and ks", `Quick, test_daat_equals_naive);
    ("daat candidates = set intersection", `Quick, test_candidates_equal);
  ]
