open Pj_engine

let texts =
  [
    (* 0 *) "lenovo signs a partnership with the nba this season";
    (* 1 *) "lenovo mentioned briefly and much later a partnership of others";
    (* 2 *) "the nba expanded its partnership program with dell";
    (* 3 *) "unrelated document about gardening and weather";
    (* 4 *) "lenovo lenovo lenovo no sports words here";
    (* 5 *) "nba partnership nba partnership no company here";
  ]

let setup () =
  let corpus = Pj_index.Corpus.create () in
  List.iter (fun t -> ignore (Pj_index.Corpus.add_text corpus t)) texts;
  let idx = Pj_index.Inverted_index.build corpus in
  Searcher.create idx

let query =
  Pj_matching.Query.make "company nba partnership"
    [
      Pj_matching.Matcher.of_table ~name:"company"
        [ ("lenovo", 1.); ("dell", 0.9) ];
      Pj_matching.Matcher.exact "nba";
      Pj_matching.Matcher.exact "partnership";
    ]

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.2)

let test_candidates () =
  let s = setup () in
  (* Docs with all three terms: 0 and 2 (doc 1 lacks nba; 4 lacks both;
     5 lacks a company). *)
  Alcotest.(check (array int)) "conjunctive" [| 0; 2 |]
    (Searcher.candidates s query)

let test_search_ranking () =
  let s = setup () in
  match Searcher.search s scoring query with
  | [ a; b ] ->
      (* Doc 0's cluster is tighter than doc 2's. *)
      Alcotest.(check int) "best doc" 0 a.Searcher.doc_id;
      Alcotest.(check int) "second doc" 2 b.Searcher.doc_id;
      Alcotest.(check bool) "ordered" true (a.Searcher.score >= b.Searcher.score)
  | hits -> Alcotest.failf "expected 2 hits, got %d" (List.length hits)

let test_search_k_limits () =
  let s = setup () in
  Alcotest.(check int) "k=1" 1 (List.length (Searcher.search ~k:1 s scoring query));
  Alcotest.(check int) "k=0" 0 (List.length (Searcher.search ~k:0 s scoring query))

let test_no_candidates () =
  let s = setup () in
  let q = Pj_matching.Query.make "impossible" [ Pj_matching.Matcher.exact "zzz" ] in
  Alcotest.(check (array int)) "no docs" [||] (Searcher.candidates s q);
  Alcotest.(check int) "no hits" 0 (List.length (Searcher.search s scoring q))

let test_search_respects_dedup () =
  (* A document where one token matches two terms at the same location:
     with dedup the invalid matchset may not be used. *)
  let corpus = Pj_index.Corpus.create () in
  ignore (Pj_index.Corpus.add_text corpus "china porcelain market");
  let idx = Pj_index.Inverted_index.build corpus in
  let s = Searcher.create idx in
  let q =
    Pj_matching.Query.make "asia porcelain"
      [
        Pj_matching.Matcher.of_table ~name:"asia" [ ("china", 1.) ];
        Pj_matching.Matcher.of_table ~name:"porcelain"
          [ ("china", 1.); ("porcelain", 0.8) ];
      ]
  in
  (match Searcher.search ~dedup:true s scoring q with
  | [ hit ] ->
      Alcotest.(check bool) "valid matchset" true
        (Pj_core.Matchset.is_valid hit.Searcher.matchset)
  | hits -> Alcotest.failf "expected 1 hit, got %d" (List.length hits));
  match Searcher.search ~dedup:false s scoring q with
  | [ hit ] ->
      Alcotest.(check bool) "duplicate allowed without dedup" false
        (Pj_core.Matchset.is_valid hit.Searcher.matchset)
  | hits -> Alcotest.failf "expected 1 hit, got %d" (List.length hits)

let test_heap_eviction_order () =
  (* More candidates than k: the top-k must equal the full ranking's
     prefix. *)
  let corpus = Pj_index.Corpus.create () in
  let rng = Pj_util.Prng.create 3 in
  for _ = 0 to 30 do
    (* Random gap between the two terms controls the score. *)
    let gap = 1 + Pj_util.Prng.int rng 12 in
    let filler = List.init gap (fun i -> "zz" ^ string_of_int i) in
    let text = String.concat " " (("alpha" :: filler) @ [ "beta" ]) in
    ignore (Pj_index.Corpus.add_text corpus text)
  done;
  let idx = Pj_index.Inverted_index.build corpus in
  let s = Searcher.create idx in
  let q =
    Pj_matching.Query.make "ab"
      [ Pj_matching.Matcher.exact "alpha"; Pj_matching.Matcher.exact "beta" ]
  in
  let all = Searcher.search ~k:31 s scoring q in
  let top5 = Searcher.search ~k:5 s scoring q in
  Alcotest.(check int) "five hits" 5 (List.length top5);
  List.iteri
    (fun i hit ->
      let expected = List.nth all i in
      Alcotest.(check int)
        (Printf.sprintf "rank %d doc" i)
        expected.Searcher.doc_id hit.Searcher.doc_id)
    top5

let test_prune_equals_unpruned () =
  (* Pruning must never change the result, including under score ties. *)
  let rng = Pj_util.Prng.create 19 in
  for trial = 1 to 30 do
    let corpus = Pj_index.Corpus.create () in
    let n_docs = 5 + Pj_util.Prng.int rng 15 in
    for _ = 1 to n_docs do
      (* Small gap alphabet creates frequent exact score ties. *)
      let gap = 1 + Pj_util.Prng.int rng 3 in
      let filler = List.init gap (fun i -> "zz" ^ string_of_int i) in
      let tokens = ("alpha" :: filler) @ [ "beta" ] in
      ignore (Pj_index.Corpus.add_text corpus (String.concat " " tokens))
    done;
    let s = Searcher.create (Pj_index.Inverted_index.build corpus) in
    let q =
      Pj_matching.Query.make "ab"
        [ Pj_matching.Matcher.exact "alpha"; Pj_matching.Matcher.exact "beta" ]
    in
    let k = 1 + Pj_util.Prng.int rng 5 in
    let a = Searcher.search ~k ~prune:true s scoring q in
    let b = Searcher.search ~k ~prune:false s scoring q in
    if List.map (fun h -> h.Searcher.doc_id) a
       <> List.map (fun h -> h.Searcher.doc_id) b
    then Alcotest.failf "trial %d: pruned search differs" trial
  done

let test_zero_matcher_query () =
  (* A query with no matchers (constructible directly as a record, even
     though Query.make forbids it) used to crash candidate generation
     with Invalid_argument ("index out of bounds"); it must mean "no
     hits". *)
  let s = setup () in
  let q = { Pj_matching.Query.label = "empty"; matchers = [||] } in
  Alcotest.(check (array int)) "no candidates" [||] (Searcher.candidates s q);
  Alcotest.(check int) "no hits" 0 (List.length (Searcher.search s scoring q))

let test_k_zero_short_circuits () =
  let s = setup () in
  (* k=0 returns [] without touching the index: a matcher with no
     finite expansions would make any candidate scan raise, so a clean
     [] proves no scan happened. *)
  let q =
    Pj_matching.Query.make "pred"
      [ Pj_matching.Matcher.predicate ~name:"any" (fun _ -> true) ]
  in
  Alcotest.(check int) "k=0 is defined" 0
    (List.length (Searcher.search ~k:0 s scoring q));
  (* k>0 on the same query still reports the missing expansions. *)
  Alcotest.check_raises "k>0 still raises"
    (Invalid_argument "Searcher: matcher any has no finite expansions")
    (fun () -> ignore (Searcher.search ~k:1 s scoring q))

let test_search_within_generous_deadline () =
  let s = setup () in
  let deadline = Pj_util.Timing.monotonic_now () +. 60. in
  match Searcher.search_within ~deadline s scoring query with
  | Error `Timeout -> Alcotest.fail "timed out with a 60s budget"
  | Ok hits ->
      let direct = Searcher.search s scoring query in
      Alcotest.(check (list int)) "same docs"
        (List.map (fun h -> h.Searcher.doc_id) direct)
        (List.map (fun h -> h.Searcher.doc_id) hits);
      List.iter2
        (fun a b ->
          Alcotest.(check (float 0.)) "same score" a.Searcher.score
            b.Searcher.score)
        direct hits

let test_search_within_expired_deadline () =
  let s = setup () in
  let deadline = Pj_util.Timing.monotonic_now () -. 1. in
  match Searcher.search_within ~deadline s scoring query with
  | Error `Timeout -> ()
  | Ok _ -> Alcotest.fail "a deadline in the past must time out"

let suite =
  [
    ("searcher: prune = no-prune", `Quick, test_prune_equals_unpruned);
    ("searcher: deadline generous", `Quick, test_search_within_generous_deadline);
    ("searcher: deadline expired", `Quick, test_search_within_expired_deadline);
    ("searcher: candidates", `Quick, test_candidates);
    ("searcher: ranking", `Quick, test_search_ranking);
    ("searcher: k limits", `Quick, test_search_k_limits);
    ("searcher: no candidates", `Quick, test_no_candidates);
    ("searcher: zero matchers", `Quick, test_zero_matcher_query);
    ("searcher: k=0 short-circuit", `Quick, test_k_zero_short_circuits);
    ("searcher: dedup flag", `Quick, test_search_respects_dedup);
    ("searcher: heap eviction", `Quick, test_heap_eviction_order);
  ]
