(* Property test: scatter-gather search over a sharded index must be
   byte-identical to [Searcher.search] over the monolithic index —
   same hits, same scores, same order, same matchsets, same
   smaller-doc-id tie-breaks — for every shard count, scoring family,
   k, and prune setting. This is the contract that makes `--shards` a
   pure performance knob. *)

open Pj_engine

let alphabet = [| "aa"; "bb"; "cc"; "dd"; "ee" |]

let corpus_gen =
  QCheck.Gen.(
    let doc = list_size (int_range 1 15) (oneofa alphabet) in
    list_size (int_range 1 24) doc)

let corpus_print docs =
  String.concat " | " (List.map (String.concat " ") docs)

let corpus_arb = QCheck.make ~print:corpus_print corpus_gen

let queries =
  [
    Pj_matching.Query.make "a" [ Pj_matching.Matcher.exact "aa" ];
    Pj_matching.Query.make "ab"
      [ Pj_matching.Matcher.exact "aa"; Pj_matching.Matcher.exact "bb" ];
    Pj_matching.Query.make "abc"
      [
        Pj_matching.Matcher.exact "aa";
        Pj_matching.Matcher.exact "bb";
        Pj_matching.Matcher.exact "cc";
      ];
  ]

let scorings =
  [
    ("win", Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.3));
    ("med", Pj_core.Scoring.Med (Pj_core.Scoring.med_exponential ~alpha:0.2));
    ("max", Pj_core.Scoring.Max (Pj_core.Scoring.max_sum ~alpha:0.25));
  ]

let shard_counts = [ 1; 2; 3; 7 ]
let ks = [ 0; 1; 10; 1000 ]

let build docs =
  let corpus = Pj_index.Corpus.create () in
  List.iter
    (fun tokens ->
      ignore (Pj_index.Corpus.add_tokens corpus (Array.of_list tokens)))
    docs;
  corpus

let hits_equal (a : Searcher.hit list) (b : Searcher.hit list) =
  (* Structural equality covers doc ids, scores (bit-for-bit via [=] on
     floats computed from identical problems), order, and matchsets
     (arrays of plain {loc; score; payload} records). *)
  a = b

let pp_hits hits =
  String.concat "; "
    (List.map
       (fun (h : Searcher.hit) ->
         Printf.sprintf "%d:%.17g" h.Searcher.doc_id h.Searcher.score)
       hits)

let check_all docs =
  let corpus = build docs in
  let mono = Searcher.create (Pj_index.Inverted_index.build corpus) in
  List.for_all
    (fun shards ->
      let sharded =
        Shard_searcher.create (Pj_index.Sharded_index.build ~shards corpus)
      in
      List.for_all
        (fun (family, scoring) ->
          List.for_all
            (fun k ->
              List.for_all
                (fun prune ->
                  List.for_all
                    (fun q ->
                      let want = Searcher.search ~k ~prune mono scoring q in
                      let got =
                        Shard_searcher.search ~k ~prune sharded scoring q
                      in
                      hits_equal want got
                      ||
                      (QCheck.Test.fail_reportf
                         "S=%d %s k=%d prune=%b query=%s:\nwant [%s]\ngot  [%s]"
                         shards family k prune q.Pj_matching.Query.label
                         (pp_hits want) (pp_hits got)))
                    queries)
                [ true; false ])
            ks)
        scorings)
    shard_counts

let sharded_equals_monolithic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:
         "Shard_searcher = Searcher for all S x family x k x prune (byte-identical)"
       corpus_arb check_all)

let suite = [ sharded_equals_monolithic ]
