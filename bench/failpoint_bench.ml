(* bench-failpoint: what a compiled-in failpoint site costs the hot
   path. Three regimes matter:

   - disabled (no rule armed anywhere): the production steady state —
     one atomic load per [hit], the cost every serving request pays
     for the chaos hooks. This is the number that must stay ~free.
   - armed elsewhere: some rule is armed, but not for this site — the
     hit takes the slow path far enough to discover it doesn't match.
     This is what healthy shards pay while one shard is being tortured.
   - end-to-end: a sharded search (the same workload as bench-shard's
     uniform layout) with sites disabled vs armed-elsewhere, to bound
     the serving-path overhead as a ratio rather than nanoseconds.

   Results land in BENCH_failpoint.json. *)

let site = "bench.fp.site"

let measure ~repetitions f =
  f ();
  (Runs.log_cov (Pj_util.Timing.measure ~repetitions f)).Pj_util.Timing.mean_s

let run ~quick ~repetitions =
  let repetitions = repetitions * 20 in
  let calls = if quick then 200_000 else 1_000_000 in
  Pj_util.Failpoint.clear ();
  Runs.print_header
    (Printf.sprintf "bench-failpoint: per-hit cost, %d calls" calls)
    [ "total"; "per call" ];
  let row name mean_s =
    Runs.print_row name
      [
        Runs.seconds mean_s;
        Printf.sprintf "%.2f ns" (1e9 *. mean_s /. float_of_int calls);
      ]
  in
  (* The loop itself, so the per-call numbers can be read as deltas. *)
  let sink = ref 0 in
  let baseline =
    measure ~repetitions (fun () ->
        for i = 1 to calls do
          sink := !sink lxor i
        done)
  in
  row "empty loop" baseline;
  let disabled =
    measure ~repetitions (fun () ->
        for i = 1 to calls do
          sink := !sink lxor i;
          Pj_util.Failpoint.hit site
        done)
  in
  row "hit, disabled" disabled;
  Pj_util.Failpoint.arm "some.other.site" Pj_util.Failpoint.Fail;
  let armed_elsewhere =
    measure ~repetitions (fun () ->
        for i = 1 to calls do
          sink := !sink lxor i;
          Pj_util.Failpoint.hit site
        done)
  in
  row "hit, armed elsewhere" armed_elsewhere;
  Pj_util.Failpoint.clear ();
  assert (Pj_util.Failpoint.fired site = 0);
  ignore (Sys.opaque_identity !sink);
  (* End-to-end: the sharded searcher's per-query latency with its
     shard.N sites disabled vs armed-elsewhere. *)
  let rng = Pj_util.Prng.create 2024 in
  let n_docs = if quick then 500 else 2000 in
  let corpus = Shard_bench.build_corpus ~n_docs ~layout:`Uniform rng in
  let searcher =
    Pj_engine.Shard_searcher.create (Pj_index.Sharded_index.build ~shards:4 corpus)
  in
  let deadline () = Pj_util.Timing.monotonic_now () +. 60. in
  let query_once () =
    match
      Pj_engine.Shard_searcher.search_degraded ~k:10 ~deadline:(deadline ())
        searcher Shard_bench.scoring Shard_bench.query
    with
    | Ok d -> assert (d.Pj_engine.Shard_searcher.failed = [])
    | Error `Timeout -> assert false
  in
  let e2e_disabled = measure ~repetitions query_once in
  Pj_util.Failpoint.arm "some.other.site" Pj_util.Failpoint.Fail;
  let e2e_armed = measure ~repetitions query_once in
  Pj_util.Failpoint.clear ();
  Runs.print_header "bench-failpoint: sharded query, 4 shards" [ "latency" ];
  Runs.print_row "sites disabled" [ Runs.seconds e2e_disabled ];
  Runs.print_row "armed elsewhere" [ Runs.seconds e2e_armed ];
  let path = "BENCH_failpoint.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"calls\": %d,\n\
    \  \"empty_loop_s\": %.9f,\n\
    \  \"disabled_s\": %.9f,\n\
    \  \"armed_elsewhere_s\": %.9f,\n\
    \  \"disabled_ns_per_call\": %.3f,\n\
    \  \"query_disabled_s\": %.9f,\n\
    \  \"query_armed_elsewhere_s\": %.9f,\n\
    \  \"query_overhead_ratio\": %.4f\n\
     }\n"
    calls baseline disabled armed_elsewhere
    (1e9 *. (disabled -. baseline) /. float_of_int calls)
    e2e_disabled e2e_armed
    (e2e_armed /. Float.max 1e-12 e2e_disabled);
  close_out oc;
  Printf.printf "[bench-failpoint] wrote %s\n" path
