(* bench-storage: what the block-compressed mmap-backed v4 format buys
   and what it costs. Per corpus scale (2k and 100k synthetic docs;
   --quick shrinks both):

   - on-disk footprint: the v4 file and its postings section vs the
     legacy v3 index file and vs the postings' in-memory array
     footprint — the compression ratios the format exists for.
   - open time: [Mapped_index.open_file] reads one fixed trailer plus
     the vocabulary, so opening is O(1) in documents and postings —
     averaged over repeated opens, reported in milliseconds.
   - RSS delta across open + a query burst: the mapped index faults in
     only the pages it touches; the in-heap build pays for everything.
   - query latency (p50/p99) for the same query stream against the
     in-memory index and the mapped one — the tax, paid per posting
     block decoded, that the footprint and open-time wins cost.

   A sanity assertion checks the mapped index returns structurally
   identical hits to the in-memory index before any timing is trusted.
   Results land in BENCH_storage.json. *)

let gen_doc rng ~strong =
  let len = 40 + Pj_util.Prng.int rng 80 in
  let tokens =
    Array.init len (fun _ -> Pj_workload.Textgen.random_filler rng)
  in
  let plant form p =
    if Pj_util.Prng.float rng 1. < p then begin
      let n = 1 + Pj_util.Prng.int rng 3 in
      for _ = 1 to n do
        tokens.(Pj_util.Prng.int rng len) <- form
      done
    end
  in
  plant "alfa" 0.9;
  plant "brav" 0.85;
  plant "charli" 0.8;
  if strong then begin
    let pos = Pj_util.Prng.int rng (len - 3) in
    tokens.(pos) <- "alpha";
    tokens.(pos + 1) <- "bravo";
    tokens.(pos + 2) <- "charlie"
  end;
  tokens

let rss_kb () =
  (* VmRSS from /proc/self/status; 0 when unavailable (non-Linux). *)
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then begin
            close_in ic;
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
              (fun kb -> kb)
          end
          else scan ()
      | exception End_of_file ->
          close_in ic;
          0
    in
    scan ()
  with Sys_error _ -> 0

let percentile_ms latencies p =
  1000. *. Pj_util.Stats.percentile latencies p

let search_searcher sr =
  Pj_engine.Searcher.search ~k:Shard_bench.k sr Shard_bench.scoring
    Shard_bench.query

let observe sr =
  let t0 = Pj_util.Timing.monotonic_now () in
  ignore (search_searcher sr);
  Pj_util.Timing.monotonic_now () -. t0

type scale_result = {
  sc_docs : int;
  sc_v3_bytes : int;
  sc_v4_bytes : int;
  sc_postings_bytes : int;
  sc_mem_postings_bytes : int;
  sc_open_ms : float;
  sc_rss_mmap_kb : int;
  sc_rss_mem_kb : int;
  sc_mem_p50 : float;
  sc_mem_p99 : float;
  sc_mmap_p50 : float;
  sc_mmap_p99 : float;
}

let run_scale ~n_docs ~searches =
  let rng = Pj_util.Prng.create 1009 in
  let corpus = Pj_index.Corpus.create () in
  for i = 0 to n_docs - 1 do
    ignore (Pj_index.Corpus.add_tokens corpus (gen_doc rng ~strong:(i mod 25 = 0)))
  done;
  let t0 = Pj_util.Timing.monotonic_now () in
  let idx = Pj_index.Inverted_index.build corpus in
  let build_s = Pj_util.Timing.monotonic_now () -. t0 in
  let v3_path = Filename.temp_file "pj_storage_bench" ".pjix" in
  let v4_path = Filename.temp_file "pj_storage_bench" ".pjx4" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ v3_path; v4_path ])
    (fun () ->
      Pj_index.Storage.save idx v3_path;
      Pj_ondisk.Writer.write idx v4_path;
      let v3_bytes = (Unix.stat v3_path).Unix.st_size in
      let v4_bytes = (Unix.stat v4_path).Unix.st_size in
      (* --- open time: repeated full opens, averaged ------------------ *)
      let opens = 100 in
      let t0 = Pj_util.Timing.monotonic_now () in
      for _ = 1 to opens - 1 do
        ignore (Pj_ondisk.Mapped_index.open_file v4_path)
      done;
      let rss0 = rss_kb () in
      let mapped = Pj_ondisk.Mapped_index.open_file v4_path in
      let open_ms =
        1000. *. (Pj_util.Timing.monotonic_now () -. t0) /. float_of_int opens
      in
      let info = Pj_ondisk.Mapped_index.info mapped in
      let mmap_searcher =
        Pj_engine.Searcher.create (Pj_ondisk.Mapped_index.index mapped)
      in
      (* --- sanity: identical hits before timing anything ------------- *)
      let mem_searcher = Pj_engine.Searcher.create idx in
      assert (search_searcher mmap_searcher = search_searcher mem_searcher);
      (* --- latency (mmap measured first so its RSS delta reflects the
             pages the query stream faults in, not heap reuse) --------- *)
      ignore (observe mmap_searcher);
      let mmap_lat = Array.init searches (fun _ -> observe mmap_searcher) in
      let rss_mmap = rss_kb () - rss0 in
      let rss1 = rss_kb () in
      ignore (observe mem_searcher);
      let mem_lat = Array.init searches (fun _ -> observe mem_searcher) in
      let rss_mem = rss_kb () - rss1 in
      Runs.print_header
        (Printf.sprintf "bench-storage: %d docs (index build %.2f s)" n_docs
           build_s)
        [ "v3 file"; "v4 file"; "postings"; "in-mem"; "open" ]
      ;
      Runs.print_row "footprint"
        [
          Printf.sprintf "%d B" v3_bytes;
          Printf.sprintf "%d B" v4_bytes;
          Printf.sprintf "%d B" info.Pj_ondisk.Mapped_index.postings_bytes;
          Printf.sprintf "%d B" info.Pj_ondisk.Mapped_index.mem_postings_bytes;
          Printf.sprintf "%.3f ms" open_ms;
        ];
      Runs.print_header "bench-storage: search latency"
        [ "p50"; "p99"; "rss delta" ];
      Runs.print_row "in-memory"
        [
          Printf.sprintf "%.3f ms" (percentile_ms mem_lat 50.);
          Printf.sprintf "%.3f ms" (percentile_ms mem_lat 99.);
          Printf.sprintf "%d kB" rss_mem;
        ];
      Runs.print_row "mmap"
        [
          Printf.sprintf "%.3f ms" (percentile_ms mmap_lat 50.);
          Printf.sprintf "%.3f ms" (percentile_ms mmap_lat 99.);
          Printf.sprintf "%d kB" rss_mmap;
        ];
      {
        sc_docs = n_docs;
        sc_v3_bytes = v3_bytes;
        sc_v4_bytes = v4_bytes;
        sc_postings_bytes = info.Pj_ondisk.Mapped_index.postings_bytes;
        sc_mem_postings_bytes =
          info.Pj_ondisk.Mapped_index.mem_postings_bytes;
        sc_open_ms = open_ms;
        sc_rss_mmap_kb = rss_mmap;
        sc_rss_mem_kb = rss_mem;
        sc_mem_p50 = percentile_ms mem_lat 50.;
        sc_mem_p99 = percentile_ms mem_lat 99.;
        sc_mmap_p50 = percentile_ms mmap_lat 50.;
        sc_mmap_p99 = percentile_ms mmap_lat 99.;
      })

let json_of_scale r =
  Printf.sprintf
    "    {\n\
    \      \"docs\": %d,\n\
    \      \"v3_file_bytes\": %d,\n\
    \      \"v4_file_bytes\": %d,\n\
    \      \"v4_postings_bytes\": %d,\n\
    \      \"mem_postings_bytes\": %d,\n\
    \      \"file_bytes_v3_over_v4\": %.3f,\n\
    \      \"postings_mem_over_disk\": %.3f,\n\
    \      \"open_ms\": %.6f,\n\
    \      \"rss_delta_mmap_kb\": %d,\n\
    \      \"rss_delta_mem_kb\": %d,\n\
    \      \"mem_p50_ms\": %.6f,\n\
    \      \"mem_p99_ms\": %.6f,\n\
    \      \"mmap_p50_ms\": %.6f,\n\
    \      \"mmap_p99_ms\": %.6f,\n\
    \      \"mmap_p99_over_mem_p99\": %.3f\n\
    \    }"
    r.sc_docs r.sc_v3_bytes r.sc_v4_bytes r.sc_postings_bytes
    r.sc_mem_postings_bytes
    (float_of_int r.sc_v3_bytes /. float_of_int r.sc_v4_bytes)
    (float_of_int r.sc_mem_postings_bytes /. float_of_int r.sc_postings_bytes)
    r.sc_open_ms r.sc_rss_mmap_kb r.sc_rss_mem_kb r.sc_mem_p50 r.sc_mem_p99
    r.sc_mmap_p50 r.sc_mmap_p99
    (r.sc_mmap_p99 /. r.sc_mem_p99)

let run ~quick ~repetitions =
  ignore repetitions;
  let scales = if quick then [ (400, 100) ] else [ (2000, 500); (100_000, 200) ] in
  let results =
    List.map (fun (n_docs, searches) -> run_scale ~n_docs ~searches) scales
  in
  let path = "BENCH_storage.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"scales\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map json_of_scale results));
  close_out oc;
  Printf.printf "[bench-storage] wrote %s\n" path
