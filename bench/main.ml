(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Section VIII), plus the ablations of DESIGN.md and a
   Bechamel micro-benchmark suite.

     dune exec bench/main.exe                  # everything, paper scale
     dune exec bench/main.exe -- --quick       # reduced document counts
     dune exec bench/main.exe -- --only fig6,fig12
     dune exec bench/main.exe -- --list        # available experiment ids *)

let available =
  [
    "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "dbworld";
    "fig2_ablation"; "max_ablation"; "dedup_ablation"; "byloc_ablation";
    "switch_ablation"; "winvalid_ablation"; "stream_ablation";
    "search_ablation"; "parallel_ablation"; "alpha_ablation"; "daat";
    "shard"; "topk"; "failpoint"; "ingest"; "storage"; "cluster"; "bechamel";
  ]

let run_experiments ~quick ~only ~csv =
  let selected id = match only with [] -> true | ids -> List.mem id ids in
  let n_docs = if quick then 100 else 500 in
  let trec_docs = if quick then 200 else 1000 in
  let repetitions = if quick then 2 else 3 in
  let cfg =
    { Figures.default_config with Figures.n_docs; repetitions }
  in
  (match csv with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Runs.set_csv_dir (Some dir)
  | None -> ());
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "proxjoin benchmark harness — %d synthetic docs, %d TREC docs, %d repetitions\n"
    n_docs trec_docs repetitions;
  if selected "fig6" then Figures.fig6 cfg;
  if selected "fig7" then Figures.fig7 cfg;
  if selected "fig8" then Figures.fig8 cfg;
  if selected "fig9" then Figures.fig9 cfg;
  if selected "fig10" then Figures.fig10 cfg;
  if selected "fig11" then Trec_bench.fig11 ~n_docs:trec_docs ~repetitions;
  if selected "fig12" then Trec_bench.fig12 ~n_docs:trec_docs;
  if selected "dbworld" then Dbworld_bench.run ~repetitions;
  if selected "fig2_ablation" then Ablations.fig2_ablation ();
  if selected "max_ablation" then
    Ablations.max_ablation ~n_docs:(n_docs / 5) ~repetitions;
  if selected "dedup_ablation" then Ablations.dedup_ablation ~n_docs ~repetitions;
  if selected "byloc_ablation" then Ablations.byloc_ablation ~n_docs ~repetitions;
  if selected "switch_ablation" then Ablations.switch_ablation ~n_docs ~repetitions;
  if selected "winvalid_ablation" then
    Ablations.winvalid_ablation ~n_docs ~repetitions;
  if selected "stream_ablation" then
    Ablations.stream_ablation ~n_docs ~repetitions;
  if selected "search_ablation" then Ablations.search_ablation ~repetitions;
  if selected "parallel_ablation" then
    Ablations.parallel_ablation ~n_docs ~repetitions;
  if selected "alpha_ablation" then Ablations.alpha_ablation ~n_docs;
  if selected "daat" then Daat_bench.run ~quick ~repetitions;
  if selected "shard" then Shard_bench.run ~quick ~repetitions;
  if selected "topk" then Topk_bench.run ~quick ~repetitions;
  if selected "failpoint" then Failpoint_bench.run ~quick ~repetitions;
  if selected "ingest" then Ingest_bench.run ~quick ~repetitions;
  if selected "storage" then Storage_bench.run ~quick ~repetitions;
  if selected "cluster" then Load_bench.run ~quick ~repetitions;
  if selected "bechamel" then
    Bechamel_suite.run ~quota_s:(if quick then 0.1 else 0.25);
  Runs.set_csv_dir None;
  Runs.report_cov_summary ();
  Printf.printf "\ntotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced document counts.")

let only =
  Arg.(
    value
    & opt (list string) []
    & info [ "only" ] ~docv:"IDS"
        ~doc:"Comma-separated experiment ids to run (see --list).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write every table as a CSV file into DIR.")

let main quick only list_flag csv =
  if list_flag then begin
    List.iter print_endline available;
    `Ok ()
  end
  else begin
    match List.filter (fun id -> not (List.mem id available)) only with
    | [] ->
        run_experiments ~quick ~only ~csv;
        `Ok ()
    | bad ->
        `Error
          (false, "unknown experiment ids: " ^ String.concat ", " bad)
  end

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Weighted Proximity Best-Joins \
     for Information Retrieval' (ICDE 2009)."
  in
  Cmd.v
    (Cmd.info "proxjoin-bench" ~doc)
    Term.(ret (const main $ quick $ only $ list_flag $ csv_arg))

let () = exit (Cmd.eval cmd)
