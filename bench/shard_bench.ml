(* bench-shard: single-query latency of the scatter-gather sharded
   searcher against the monolithic one, at 1/2/4/8 shards.

   Two corpus layouts are measured, because they isolate the two
   effects sharding has:

   - "quality_ordered": documents carry ids in descending static
     quality — the strong expansion forms live in the low doc-id
     range, later documents only contain degraded forms (the standard
     quality-ordered id assignment of web indexes). Here sharding wins
     even on a single core: each shard's score ceiling is computed
     from *its own* posting lists, so once the first shard fills the
     top-k and publishes the shared threshold, the weak shards'
     ceilings fall strictly below it and their whole scans early-stop
     before aligning a single candidate. The monolithic searcher owns
     one global ceiling that includes the strong forms, so it must
     leapfrog the full intersection.

   - "uniform": the same planted occurrences spread evenly over the
     ids. Per-shard ceilings equal the global one, so single-core
     sharding can only break even (the fan-out itself is the measured
     overhead); with real parallelism (PROXJOIN_DOMAINS > 1 on a
     multi-core box) this layout is where the domains carry the win.

   Reported per point: mean wall-clock latency and allocated bytes on
   the submitting domain, one query at a time (no pipelining), plus
   the speedup over unsharded. Results land in BENCH_shard.json. *)

open Pj_workload

let query =
  Pj_matching.Query.make "bench"
    [
      Pj_matching.Matcher.of_table ~name:"t1" [ ("alpha", 1.0); ("alfa", 0.35) ];
      Pj_matching.Matcher.of_table ~name:"t2" [ ("bravo", 0.9); ("brav", 0.3) ];
      Pj_matching.Matcher.of_table ~name:"t3"
        [ ("charlie", 0.8); ("charli", 0.25) ];
    ]

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.1)
let k = 10

let plant rng tokens form p =
  if Pj_util.Prng.float rng 1. < p then begin
    let n = 1 + Pj_util.Prng.int rng 3 in
    for _ = 1 to n do
      tokens.(Pj_util.Prng.int rng (Array.length tokens)) <- form
    done
  end

(* One document: filler plus planted forms. A strong document carries
   one tight run of the full-score forms — high sum, small window — so
   its score clears the degraded forms' proximity-free ceiling
   (0.35 + 0.3 + 0.25 = 0.9) by a wide margin. *)
let add_doc corpus rng ~strong =
  let len = 80 + Pj_util.Prng.int rng 120 in
  let tokens = Array.init len (fun _ -> Textgen.random_filler rng) in
  (* Degraded forms are dense — most documents are conjunctive
     candidates the searcher must at least align and upper-bound. The
     monolithic searcher pays that for the whole corpus; a shard whose
     ceiling falls below the shared threshold skips it wholesale. *)
  plant rng tokens "alfa" 0.9;
  plant rng tokens "brav" 0.85;
  plant rng tokens "charli" 0.8;
  if strong then begin
    let pos = Pj_util.Prng.int rng (len - 3) in
    tokens.(pos) <- "alpha";
    tokens.(pos + 1) <- "bravo";
    tokens.(pos + 2) <- "charlie"
  end;
  ignore (Pj_index.Corpus.add_tokens corpus tokens)

let build_corpus ~n_docs ~layout rng =
  let corpus = Pj_index.Corpus.create () in
  (match layout with
  | `Quality_ordered ->
      (* Strong documents first: ids are assigned by quality, so the
         strong forms' postings all live at the head of the id
         space. *)
      let n_strong = n_docs / 25 in
      for _ = 1 to n_strong do
        add_doc corpus rng ~strong:true
      done;
      for _ = n_strong + 1 to n_docs do
        add_doc corpus rng ~strong:false
      done
  | `Uniform ->
      for _ = 1 to n_docs do
        add_doc corpus rng ~strong:(Pj_util.Prng.float rng 1. < 0.04)
      done);
  corpus

type point = {
  mean_s : float;
  alloc_bytes : float; (* per query, on the submitting domain *)
}

(* One query is sub-millisecond, so the harness-wide repetition count
   (2–3, sized for whole-corpus experiments) is far too few samples —
   scale it up and warm up first, or scheduler noise drowns the
   signal. *)
let measure_point ~repetitions f =
  f ();
  let repetitions = repetitions * 20 in
  let m = Runs.log_cov (Pj_util.Timing.measure ~repetitions f) in
  let a0 = Gc.allocated_bytes () in
  f ();
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  { mean_s = m.Pj_util.Timing.mean_s; alloc_bytes }

let json_point { mean_s; alloc_bytes } =
  Printf.sprintf "{\"mean_s\": %.9f, \"alloc_bytes\": %.0f}" mean_s alloc_bytes

let hit_key (h : Pj_engine.Searcher.hit) =
  (h.Pj_engine.Searcher.doc_id, h.Pj_engine.Searcher.score)

let run_layout ~repetitions ~n_docs ~name layout =
  let rng = Pj_util.Prng.create 2024 in
  let corpus = build_corpus ~n_docs ~layout rng in
  let mono = Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus) in
  let baseline_hits = Pj_engine.Searcher.search ~k mono scoring query in
  Runs.print_header
    (Printf.sprintf "bench-shard (%s): single-query latency, %d docs" name
       n_docs)
    [ "latency"; "speedup"; "alloc B" ];
  let baseline =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (Pj_engine.Searcher.search ~k mono scoring query)))
  in
  Runs.print_row "unsharded"
    [ Runs.seconds baseline.mean_s; "1.00x";
      Printf.sprintf "%.0f" baseline.alloc_bytes ];
  let shard_points =
    List.map
      (fun shards ->
        let searcher =
          Pj_engine.Shard_searcher.create
            (Pj_index.Sharded_index.build ~shards corpus)
        in
        (* The knob must stay a pure performance knob: identical hits. *)
        let hits = Pj_engine.Shard_searcher.search ~k searcher scoring query in
        if List.map hit_key hits <> List.map hit_key baseline_hits then
          failwith
            (Printf.sprintf
               "bench-shard: %d-shard results diverge from unsharded" shards);
        let p =
          measure_point ~repetitions (fun () ->
              ignore
                (Sys.opaque_identity
                   (Pj_engine.Shard_searcher.search ~k searcher scoring query)))
        in
        Runs.print_row
          (Printf.sprintf "%d shards" shards)
          [
            Runs.seconds p.mean_s;
            Printf.sprintf "%.2fx" (baseline.mean_s /. Float.max 1e-12 p.mean_s);
            Printf.sprintf "%.0f" p.alloc_bytes;
          ];
        (shards, p))
      [ 1; 2; 4; 8 ]
  in
  let json =
    String.concat ",\n"
      (Printf.sprintf "      \"unsharded\": %s" (json_point baseline)
      :: List.map
           (fun (shards, p) ->
             Printf.sprintf
               "      \"shards_%d\": {\"point\": %s, \"speedup\": %.3f, \
                \"alloc_ratio\": %.3f}"
               shards (json_point p)
               (baseline.mean_s /. Float.max 1e-12 p.mean_s)
               (baseline.alloc_bytes /. Float.max 1. p.alloc_bytes))
           shard_points)
  in
  let speedup_at shards =
    let p = List.assoc shards shard_points in
    baseline.mean_s /. Float.max 1e-12 p.mean_s
  in
  (Printf.sprintf "    %S: {\n%s\n    }" name json, speedup_at 4)

let run ~quick ~repetitions =
  let n_docs = if quick then 500 else 2000 in
  let quality_json, quality_speedup4 =
    run_layout ~repetitions ~n_docs ~name:"quality_ordered" `Quality_ordered
  in
  let uniform_json, _ =
    run_layout ~repetitions ~n_docs ~name:"uniform" `Uniform
  in
  let path = "BENCH_shard.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"n_docs\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"speedup_4_shards\": %.3f,\n\
    \  \"layouts\": {\n\
     %s,\n\
     %s\n\
    \  }\n\
     }\n"
    n_docs
    (Pj_util.Parallel.recommended_domains ())
    quality_speedup4 quality_json uniform_json;
  close_out oc;
  Printf.printf "[bench-shard] wrote %s\n" path
