(* bench-daat: the document-at-a-time searcher against the set-based
   candidate generation it replaced.

   The old path (preserved here as the baseline) materialized one
   Set.Make(Int) per query term from every expansion posting before
   intersecting — O(total postings) allocation per query — and ran the
   proximity-free upper-bound prune only after building each
   candidate's match-list problem. The DAAT path leapfrogs posting-list
   cursors and prunes before any materialization. Reported per query:
   wall-clock latency and allocated bytes, for candidate generation
   alone and for the full top-k search; results land in
   BENCH_daat.json. *)

open Pj_workload

module Iset = Set.Make (Int)

(* --- the pre-change searcher, kept as the measured baseline ------------ *)

let old_term_doc_ids idx (m : Pj_matching.Matcher.t) =
  match m.Pj_matching.Matcher.expansions with
  | None -> assert false
  | Some expansions ->
      List.fold_left
        (fun acc (form, _) ->
          let pl = Pj_index.Inverted_index.postings_of_word idx form in
          Pj_index.Posting_list.fold
            (fun acc p -> Iset.add p.Pj_index.Posting.doc_id acc)
            acc pl)
        Iset.empty expansions

let old_candidates idx (q : Pj_matching.Query.t) =
  let sets = Array.map (old_term_doc_ids idx) q.Pj_matching.Query.matchers in
  let smallest =
    Array.fold_left
      (fun acc s -> if Iset.cardinal s < Iset.cardinal acc then s else acc)
      sets.(0) sets
  in
  let all =
    Iset.filter
      (fun doc -> Array.for_all (fun s -> Iset.mem doc s) sets)
      smallest
  in
  Array.of_list (Iset.elements all)

type old_hit = { doc_id : int; score : float }

let old_search ~k idx scoring q =
  let heap =
    Pj_util.Heap.create ~leq:(fun a b ->
        match compare b.score a.score with
        | 0 -> a.doc_id <= b.doc_id
        | c -> c <= 0)
  in
  (* The pre-change prune: fires only after the per-document match
     lists are already built. *)
  let worth_solving ~doc_id problem =
    Pj_util.Heap.length heap < k
    ||
    match Pj_util.Heap.peek heap with
    | None -> true
    | Some weakest ->
        let best_scores =
          Array.map
            (fun list ->
              Array.fold_left
                (fun acc m -> Float.max acc m.Pj_core.Match0.score)
                0. list)
            problem
        in
        let bound = Pj_core.Scoring.upper_bound scoring best_scores in
        bound > weakest.score
        || (bound = weakest.score && doc_id < weakest.doc_id)
  in
  Array.iter
    (fun doc_id ->
      let problem = Pj_matching.Match_builder.from_index idx ~doc_id q in
      if worth_solving ~doc_id problem then begin
        match Pj_core.Best_join.solve ~dedup:true scoring problem with
        | None -> ()
        | Some r ->
            let hit = { doc_id; score = r.Pj_core.Naive.score } in
            if Pj_util.Heap.length heap < k then Pj_util.Heap.push heap hit
            else begin
              match Pj_util.Heap.peek heap with
              | Some weakest
                when hit.score > weakest.score
                     || (hit.score = weakest.score
                        && hit.doc_id < weakest.doc_id) ->
                  ignore (Pj_util.Heap.pop heap);
                  Pj_util.Heap.push heap hit
              | Some _ | None -> ()
            end
      end)
    (old_candidates idx q);
  Pj_util.Heap.length heap

(* --- the example corpus ------------------------------------------------ *)

(* Filler-heavy documents with three planted terms at realistic
   selectivities; two terms have a second, lower-scored form so the
   DAAT term cursors are genuine multi-list unions. *)
let query =
  Pj_matching.Query.make "bench"
    [
      Pj_matching.Matcher.of_table ~name:"t1" [ ("alpha", 1.0); ("alfa", 0.7) ];
      Pj_matching.Matcher.of_table ~name:"t2" [ ("bravo", 0.9); ("brav", 0.5) ];
      Pj_matching.Matcher.of_table ~name:"t3" [ ("charlie", 0.8) ];
    ]

let plant rng tokens form p =
  if Pj_util.Prng.float rng 1. < p then begin
    let n = 1 + Pj_util.Prng.int rng 3 in
    for _ = 1 to n do
      tokens.(Pj_util.Prng.int rng (Array.length tokens)) <- form
    done
  end

let build_corpus ~n_docs rng =
  let corpus = Pj_index.Corpus.create () in
  for _ = 1 to n_docs do
    let len = 80 + Pj_util.Prng.int rng 120 in
    let tokens = Array.init len (fun _ -> Textgen.random_filler rng) in
    plant rng tokens "alpha" 0.45;
    plant rng tokens "alfa" 0.15;
    plant rng tokens "bravo" 0.35;
    plant rng tokens "brav" 0.10;
    plant rng tokens "charlie" 0.30;
    ignore (Pj_index.Corpus.add_tokens corpus tokens)
  done;
  corpus

(* --- measurement ------------------------------------------------------- *)

type point = {
  mean_s : float;
  alloc_bytes : float;  (* per run *)
}

let measure_point ~repetitions f =
  let m = Runs.log_cov (Pj_util.Timing.measure ~repetitions f) in
  let a0 = Gc.allocated_bytes () in
  f ();
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  { mean_s = m.Pj_util.Timing.mean_s; alloc_bytes }

let json_point { mean_s; alloc_bytes } =
  Printf.sprintf "{\"mean_s\": %.9f, \"alloc_bytes\": %.0f}" mean_s alloc_bytes

let json_pair name old_p new_p =
  Printf.sprintf
    "  %S: {\"old\": %s, \"new\": %s, \"speedup\": %.3f, \"alloc_ratio\": \
     %.3f}"
    name (json_point old_p) (json_point new_p)
    (old_p.mean_s /. Float.max 1e-12 new_p.mean_s)
    (old_p.alloc_bytes /. Float.max 1. new_p.alloc_bytes)

let run ~quick ~repetitions =
  let n_docs = if quick then 500 else 2000 in
  let rng = Pj_util.Prng.create 2024 in
  let corpus = build_corpus ~n_docs rng in
  let idx = Pj_index.Inverted_index.build corpus in
  let s = Pj_engine.Searcher.create idx in
  let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.1) in
  let k = 10 in
  let stats = Pj_index.Inverted_index.stats idx in
  Runs.print_header
    (Printf.sprintf
       "bench-daat: set-based vs cursor candidate generation (%d docs, %d \
        postings)"
       n_docs stats.Pj_index.Inverted_index.n_postings)
    [ "old"; "new"; "speedup"; "old B"; "new B" ];
  let row name old_p new_p =
    Runs.print_row name
      [
        Runs.seconds old_p.mean_s;
        Runs.seconds new_p.mean_s;
        Printf.sprintf "%.2fx" (old_p.mean_s /. Float.max 1e-12 new_p.mean_s);
        Printf.sprintf "%.0f" old_p.alloc_bytes;
        Printf.sprintf "%.0f" new_p.alloc_bytes;
      ]
  in
  let cand_old =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (old_candidates idx query)))
  in
  let cand_new =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (Pj_engine.Searcher.candidates s query)))
  in
  row "candidates" cand_old cand_new;
  let search_old =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (old_search ~k idx scoring query)))
  in
  let search_new =
    measure_point ~repetitions (fun () ->
        ignore
          (Sys.opaque_identity (Pj_engine.Searcher.search ~k s scoring query)))
  in
  row "search" search_old search_new;
  let path = "BENCH_daat.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"n_docs\": %d,\n  \"n_postings\": %d,\n%s,\n%s\n}\n"
    n_docs stats.Pj_index.Inverted_index.n_postings
    (json_pair "candidates" cand_old cand_new)
    (json_pair "search" search_old search_new);
  close_out oc;
  Printf.printf "[bench-daat] wrote %s\n" path
