(* bench-cluster: what the serving tier does under open-loop heavy
   traffic. Closed-loop load generators (send, wait, send) hide queueing
   collapse: a slow server slows the *generator* down, so measured
   latency stays flat while real clients would be stacking up. Here the
   arrival rate is fixed in advance — every request has a scheduled due
   time, latency is measured from the due time (not the send time, which
   dodges coordinated omission: a sender that falls behind still charges
   the delay to the requests that suffered it), and the same schedule is
   replayed against three topologies:

   - mono:     one server over the full corpus,
   - routed:   a scatter-gather router over 2 shard backends,
   - degraded: the same router with one backend killed (every answer is
               the survivors' exact top-k, via the failover path).

   All requests ride the binary pipelined protocol over hundreds of
   concurrent connections; one sender thread walks the global schedule
   while a receiver thread per connection matches responses by request
   id. The arrival rate is set to half the measured closed-loop capacity
   so the healthy arms run below saturation and the degraded arm shows
   the failover tax, not queueing collapse. Results land in
   BENCH_cluster.json with p50/p99/p999 and outcome counts per arm. *)

module Frame = Pj_frame.Frame
module Wire = Pj_frame.Wire
module Server = Pj_server.Server
module Router = Pj_cluster.Router

(* --- corpus and query set --------------------------------------------- *)

let markers = Array.init 16 (fun i -> Printf.sprintf "marker%02d" i)

let gen_doc rng =
  let len = 40 + Pj_util.Prng.int rng 40 in
  let tokens =
    Array.init len (fun _ -> Pj_workload.Textgen.random_filler rng)
  in
  let n_plant = 2 + Pj_util.Prng.int rng 3 in
  for _ = 1 to n_plant do
    tokens.(Pj_util.Prng.int rng len) <-
      markers.(Pj_util.Prng.int rng (Array.length markers))
  done;
  tokens

(* 61 distinct SEARCH lines cycling through families, ks and marker
   pairs. 61 is prime — and in particular coprime to the connection
   counts — so successive requests on one connection carry different
   lines: with cache_capacity = 1 on every server, every request is a
   real search. (With [lines = conns] each connection repeats a single
   line forever, and a pipelined burst of same-key requests turns the
   healthy arms into a cache benchmark while degraded answers — never
   cached — pay full price: the arms stop being comparable.) *)
let query_lines rng =
  Array.init 61 (fun i ->
      let family = [| "win"; "med"; "max" |].(i mod 3) in
      let alpha = [| 0.1; 0.2; 0.3 |].(i mod 3) in
      let k = 5 + (i mod 6) in
      let a = Pj_util.Prng.int rng (Array.length markers) in
      let b =
        (a + 1 + Pj_util.Prng.int rng (Array.length markers - 1))
        mod Array.length markers
      in
      Printf.sprintf "SEARCH %s %g %d exact:%s exact:%s" family alpha k
        markers.(a) markers.(b))

let build_searcher docs =
  let corpus = Pj_index.Corpus.create () in
  Array.iter (fun d -> ignore (Pj_index.Corpus.add_tokens corpus d)) docs;
  Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)

let server_config =
  {
    Server.default_config with
    Server.domains = 1;
    queue_capacity = 256;
    cache_capacity = 1;
    deadline_s = 5.;
    (* A deep in-flight cap just multiplies threads on a small box;
       backpressure at 4 keeps the thread count proportional to
       connections, not to backlog. *)
    binary_inflight = 4;
  }

let start_backend docs =
  Server.start ~config:server_config ~n_docs:(Array.length docs)
    ~graph:(Pj_ontology.Mini_wordnet.create ())
    (Pj_server.Worker_pool.of_searcher (build_searcher docs))

(* --- binary client ----------------------------------------------------- *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let is_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Outcome codes stored per request id. *)
let o_unanswered = -1
let o_hits = 0
let o_degraded = 1
let o_busy = 2
let o_timeout = 3
let o_err = 4

let classify payload =
  if is_prefix "HITS " payload then o_hits
  else if is_prefix "OK-DEGRADED " payload then o_degraded
  else if payload = "BUSY" then o_busy
  else if payload = "TIMEOUT" then o_timeout
  else o_err

(* --- one open-loop arm ------------------------------------------------- *)

type arm = {
  arm_rate : float;  (* offered qps *)
  arm_conns : int;
  arm_total : int;
  arm_counts : int array;  (* hits; degraded; busy; timeout; err/unanswered *)
  arm_p50 : float;  (* ms, over answered requests *)
  arm_p99 : float;
  arm_p999 : float;
}

let run_arm ~port ~conns ~rate ~duration lines =
  let total = max conns (int_of_float (rate *. duration)) in
  let due = Array.make total 0. in
  let lat = Array.make total nan in
  let outcome = Array.make total o_unanswered in
  let fds = Array.init conns (fun _ -> connect port) in
  let per_conn = Array.make conns 0 in
  for i = 0 to total - 1 do
    per_conn.(i mod conns) <- per_conn.(i mod conns) + 1
  done;
  (* The whole schedule exists before the first send, so a receiver can
     never observe an unwritten due time. *)
  let t0 = Pj_util.Timing.monotonic_now () +. 0.1 in
  for i = 0 to total - 1 do
    due.(i) <- t0 +. (float_of_int i /. rate)
  done;
  let receiver j =
    let c = fds.(j) in
    let remaining = ref per_conn.(j) in
    try
      while !remaining > 0 do
        match Wire.read c.ic with
        | Wire.Frame f ->
            let id = f.Frame.id in
            if id >= 0 && id < total then begin
              lat.(id) <- Pj_util.Timing.monotonic_now () -. due.(id);
              outcome.(id) <- classify f.Frame.payload
            end;
            decr remaining
        | Wire.Closed | Wire.Bad _ -> raise Exit
      done
    with Exit | Sys_error _ -> ()
    (* A dropped connection leaves its remaining ids unanswered; they
       are counted as errors below rather than silently excluded. *)
  in
  let receivers = Array.init conns (fun j -> Thread.create receiver j) in
  (try
     for i = 0 to total - 1 do
       let now = Pj_util.Timing.monotonic_now () in
       if due.(i) > now then Unix.sleepf (due.(i) -. now);
       let c = fds.(i mod conns) in
       Wire.write_flush c.oc
         {
           Frame.kind = Frame.Request;
           id = i;
           payload = lines.(i mod Array.length lines);
         }
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  Array.iter Thread.join receivers;
  Array.iter close fds;
  let counts = Array.make 5 0 in
  let answered = ref [] in
  Array.iteri
    (fun i o ->
      if o = o_unanswered then counts.(o_err) <- counts.(o_err) + 1
      else begin
        counts.(o) <- counts.(o) + 1;
        answered := lat.(i) :: !answered
      end)
    outcome;
  let lats = Array.of_list !answered in
  let pct p =
    if Array.length lats = 0 then 0.
    else 1000. *. Pj_util.Stats.percentile lats p
  in
  {
    arm_rate = rate;
    arm_conns = conns;
    arm_total = total;
    arm_counts = counts;
    arm_p50 = pct 50.;
    arm_p99 = pct 99.;
    arm_p999 = pct 99.9;
  }

(* Closed-loop capacity probe with the *same* connection structure as
   the measured arms: [conns] connections each ping-ponging
   sequentially. A single-connection probe would measure raw search
   throughput and miss what hundreds of connection/reader/worker
   threads cost on a small box — an offered rate derived from it
   saturates the open-loop arms into queueing collapse instead of
   measuring them. *)
let closed_loop_rate ~port ~conns ~seconds lines =
  let completed = Atomic.make 0 in
  let t0 = Pj_util.Timing.monotonic_now () in
  let stop = t0 +. seconds in
  let client j =
    let c = connect port in
    Fun.protect
      ~finally:(fun () -> close c)
      (fun () ->
        let n = ref j in
        try
          while Pj_util.Timing.monotonic_now () < stop do
            Wire.write_flush c.oc
              {
                Frame.kind = Frame.Request;
                id = !n;
                payload = lines.(!n mod Array.length lines);
              };
            (match Wire.read c.ic with
            | Wire.Frame _ -> Atomic.incr completed
            | Wire.Closed | Wire.Bad _ -> raise Exit);
            n := !n + conns
          done
        with Exit | Sys_error _ -> ())
  in
  let threads = Array.init conns (fun j -> Thread.create client j) in
  Array.iter Thread.join threads;
  float_of_int (Atomic.get completed)
  /. (Pj_util.Timing.monotonic_now () -. t0)

(* --- the bench --------------------------------------------------------- *)

let row name a =
  Runs.print_row name
    [
      Printf.sprintf "%.0f" a.arm_rate;
      string_of_int a.arm_conns;
      string_of_int a.arm_total;
      Printf.sprintf "%.2f ms" a.arm_p50;
      Printf.sprintf "%.2f ms" a.arm_p99;
      Printf.sprintf "%.2f ms" a.arm_p999;
      Printf.sprintf "%d/%d/%d/%d/%d" a.arm_counts.(o_hits)
        a.arm_counts.(o_degraded) a.arm_counts.(o_busy)
        a.arm_counts.(o_timeout) a.arm_counts.(o_err);
    ]

let json_arm name a =
  Printf.sprintf
    "  \"%s\": {\n\
    \    \"offered_qps\": %.1f,\n\
    \    \"connections\": %d,\n\
    \    \"requests\": %d,\n\
    \    \"hits\": %d,\n\
    \    \"degraded\": %d,\n\
    \    \"busy\": %d,\n\
    \    \"timeout\": %d,\n\
    \    \"errors\": %d,\n\
    \    \"p50_ms\": %.4f,\n\
    \    \"p99_ms\": %.4f,\n\
    \    \"p999_ms\": %.4f\n\
    \  }" name a.arm_rate a.arm_conns a.arm_total a.arm_counts.(o_hits)
    a.arm_counts.(o_degraded) a.arm_counts.(o_busy) a.arm_counts.(o_timeout)
    a.arm_counts.(o_err) a.arm_p50 a.arm_p99 a.arm_p999

let spec_of server =
  { Router.host = "127.0.0.1"; port = Server.port server; base = None }

let never_searches ~scoring:_ ~k:_ ~deadline:_ _query = Ok ([], [])

let run ~quick ~repetitions =
  ignore repetitions;
  let n_docs = if quick then 1_000 else 4_000 in
  let conns = if quick then 64 else 500 in
  let duration = if quick then 2.0 else 10.0 in
  let probe_s = if quick then 0.5 else 2.0 in
  let rng = Pj_util.Prng.create 1729 in
  let docs = Array.init n_docs (fun _ -> gen_doc rng) in
  let lines = query_lines rng in
  let half = n_docs / 2 in
  let docs_a = Array.sub docs 0 half in
  let docs_b = Array.sub docs half (n_docs - half) in
  (* mono over the whole corpus, two shard backends over the halves. *)
  let mono = start_backend docs in
  let back_a = start_backend docs_a in
  let back_b = start_backend docs_b in
  let router =
    match
      Router.create ~legs:[ (spec_of back_a, []); (spec_of back_b, []) ] ()
    with
    | Ok r -> r
    | Error e -> failwith ("bench-cluster: " ^ e)
  in
  let start_front () =
    Server.start ~config:server_config ~forward:(Router.search router)
      ~extra_stats:(fun () -> Router.stats_extra router)
      ~graph:(Pj_ontology.Mini_wordnet.create ())
      never_searches
  in
  let front = start_front () in
  (* A separate front (and so a separate result cache) for the
     dead-backend arm: complete answers cached while both legs were
     healthy would otherwise leak into it as stale HITS. *)
  let front_degraded = start_front () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop front;
      Server.stop front_degraded;
      Router.close router;
      Server.stop back_a;
      Server.stop back_b;
      Server.stop mono)
    (fun () ->
      (* Capacity probe against the *routed* front — the weakest
         healthy topology — fixes one offered rate for every arm: the
         comparison is at equal load, and no arm is pushed past its
         own saturation point. (Anchoring to mono would offer the
         routed arms more than the front's per-connection in-flight
         window can clear, measuring queueing collapse instead of the
         routing tax.) *)
      let closed =
        closed_loop_rate ~port:(Server.port front) ~conns ~seconds:probe_s
          lines
      in
      let rate = Float.max 50. (0.5 *. closed) in
      Runs.print_header
        (Printf.sprintf
           "bench-cluster: open-loop, %d docs, routed closed-loop capacity \
            %.0f qps"
           n_docs closed)
        [ "qps"; "conns"; "reqs"; "p50"; "p99"; "p999"; "h/d/b/t/e" ];
      let mono_arm =
        run_arm ~port:(Server.port mono) ~conns ~rate ~duration lines
      in
      row "mono" mono_arm;
      let routed_arm =
        run_arm ~port:(Server.port front) ~conns ~rate ~duration lines
      in
      row "routed 2-shard" routed_arm;
      (* Kill one backend: every answer must degrade to the survivors'
         exact top-k, through the (futile, replica-less) retry path. *)
      Server.kill back_b;
      let degraded_arm =
        run_arm ~port:(Server.port front_degraded) ~conns ~rate ~duration lines
      in
      row "routed, 1 dead" degraded_arm;
      (* Topology-deterministic invariants (independent of load): a
         monolithic searcher can never degrade, and a router with a
         dead, replica-less leg can never produce a complete HITS. *)
      assert (mono_arm.arm_counts.(o_degraded) = 0);
      assert (degraded_arm.arm_counts.(o_hits) = 0);
      assert (degraded_arm.arm_counts.(o_degraded) > 0);
      let shed a =
        a.arm_counts.(o_busy) + a.arm_counts.(o_timeout) + a.arm_counts.(o_err)
      in
      if shed mono_arm * 100 > mono_arm.arm_total then
        Printf.printf
          "[bench-cluster] warning: mono shed %d/%d at half capacity\n"
          (shed mono_arm) mono_arm.arm_total;
      if shed routed_arm * 100 > routed_arm.arm_total then
        Printf.printf
          "[bench-cluster] warning: routed shed %d/%d at half capacity\n"
          (shed routed_arm) routed_arm.arm_total;
      let path = "BENCH_cluster.json" in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"docs\": %d,\n\
        \  \"connections\": %d,\n\
        \  \"duration_s\": %.1f,\n\
        \  \"closed_loop_qps\": %.1f,\n\
        \  \"offered_qps\": %.1f,\n\
         %s,\n\
         %s,\n\
         %s\n\
         }\n"
        n_docs conns duration closed rate
        (json_arm "mono" mono_arm)
        (json_arm "routed" routed_arm)
        (json_arm "degraded" degraded_arm);
      close_out oc;
      Printf.printf "[bench-cluster] wrote %s\n" path)
