(* bench-topk: single-query latency of block-max pruned candidate
   generation against the exhaustive DAAT traversal (the same searcher
   with [~blockmax:false]), on three corpus layouts:

   - "uniform": strong documents spread evenly over the id space. This
     is the layout block-max pruning is for — and where whole-list
     max-score pruning is useless: the degraded (weak, dense) forms
     are conjunctive everywhere, so the exhaustive traversal aligns
     nearly every document, while the block-max traversal demotes the
     weak forms to non-essential as soon as the heap fills (their
     proximity-free ceiling loses to the k-th strong score) and
     leapfrogs only the sparse strong lists, region-skipping the rest
     block by block.

   - "quality_ordered": strong documents first. The whole-list
     max-score early-stop already kills the tail here, so block-max
     must show no regression — its extra bookkeeping has to stay in
     the noise.

   - "impact_skewed": uniform plus heavy term repetition in a few
     documents, varying the per-block quantized impact ceilings the
     skip metadata records.

   The pruned hits are checked byte-identical to the exhaustive hits
   before anything is timed (the knob must be a pure performance
   knob). Results land in BENCH_topk.json. *)

open Pj_workload

let query =
  Pj_matching.Query.make "bench"
    [
      Pj_matching.Matcher.of_table ~name:"t1" [ ("alpha", 1.0); ("alfa", 0.35) ];
      Pj_matching.Matcher.of_table ~name:"t2" [ ("bravo", 0.9); ("brav", 0.3) ];
      Pj_matching.Matcher.of_table ~name:"t3"
        [ ("charlie", 0.8); ("charli", 0.25) ];
    ]

let scoring = Pj_core.Scoring.Win (Pj_core.Scoring.win_exponential ~alpha:0.1)
let k = 10

let plant rng tokens form p =
  if Pj_util.Prng.float rng 1. < p then begin
    let n = 1 + Pj_util.Prng.int rng 3 in
    for _ = 1 to n do
      tokens.(Pj_util.Prng.int rng (Array.length tokens)) <- form
    done
  end

(* One document: filler plus planted forms. The weak forms are dense,
   so almost every document is a conjunctive candidate; a strong
   document carries one tight run of the full-score forms, clearing the
   weak ceiling (0.35 + 0.3 + 0.25 = 0.9) by a wide margin. [spike]
   additionally repeats a weak form many times — term-frequency spikes
   that lift single blocks' quantized impact ceilings. *)
let add_doc corpus rng ~strong ~spike =
  let len = 80 + Pj_util.Prng.int rng 120 in
  let tokens = Array.init len (fun _ -> Textgen.random_filler rng) in
  plant rng tokens "alfa" 0.9;
  plant rng tokens "brav" 0.85;
  plant rng tokens "charli" 0.8;
  if spike then
    for _ = 1 to 12 do
      tokens.(Pj_util.Prng.int rng len) <- "alfa"
    done;
  if strong then begin
    let pos = Pj_util.Prng.int rng (len - 3) in
    tokens.(pos) <- "alpha";
    tokens.(pos + 1) <- "bravo";
    tokens.(pos + 2) <- "charlie"
  end;
  ignore (Pj_index.Corpus.add_tokens corpus tokens)

let build_corpus ~n_docs ~layout rng =
  let corpus = Pj_index.Corpus.create () in
  (match layout with
  | `Quality_ordered ->
      let n_strong = n_docs / 25 in
      for _ = 1 to n_strong do
        add_doc corpus rng ~strong:true ~spike:false
      done;
      for _ = n_strong + 1 to n_docs do
        add_doc corpus rng ~strong:false ~spike:false
      done
  | `Uniform ->
      for _ = 1 to n_docs do
        add_doc corpus rng
          ~strong:(Pj_util.Prng.float rng 1. < 0.008)
          ~spike:false
      done
  | `Impact_skewed ->
      for _ = 1 to n_docs do
        add_doc corpus rng
          ~strong:(Pj_util.Prng.float rng 1. < 0.008)
          ~spike:(Pj_util.Prng.float rng 1. < 0.05)
      done);
  corpus

type point = {
  mean_s : float;
  alloc_bytes : float;
}

(* Single queries are sub-millisecond; scale the repetition count up
   and warm up first (see bench-shard). *)
let measure_point ~repetitions f =
  f ();
  let repetitions = repetitions * 20 in
  let m = Runs.log_cov (Pj_util.Timing.measure ~repetitions f) in
  let a0 = Gc.allocated_bytes () in
  f ();
  let alloc_bytes = Gc.allocated_bytes () -. a0 in
  { mean_s = m.Pj_util.Timing.mean_s; alloc_bytes }

let json_point { mean_s; alloc_bytes } =
  Printf.sprintf "{\"mean_s\": %.9f, \"alloc_bytes\": %.0f}" mean_s alloc_bytes

let hit_key (h : Pj_engine.Searcher.hit) =
  (h.Pj_engine.Searcher.doc_id, h.Pj_engine.Searcher.score)

let run_layout ~repetitions ~n_docs ~name layout =
  let rng = Pj_util.Prng.create 2024 in
  let corpus = build_corpus ~n_docs ~layout rng in
  let searcher =
    Pj_engine.Searcher.create (Pj_index.Inverted_index.build corpus)
  in
  let search ~blockmax () =
    Pj_engine.Searcher.search ~k ~blockmax searcher scoring query
  in
  (* Losslessness gate: the pruned traversal must reproduce the
     exhaustive top-k bit for bit before any timing counts. *)
  if
    List.map hit_key (search ~blockmax:true ())
    <> List.map hit_key (search ~blockmax:false ())
  then
    failwith
      (Printf.sprintf "bench-topk (%s): blockmax results diverge" name);
  (* Candidate generation in isolation: how many aligned candidates
     reach the scoring stage (counted through the [accept] hook, which
     sees every candidate before bounding or solving). The pruned
     traversal never aligns the candidates it region-skips. *)
  let visited blockmax =
    let n = ref 0 in
    ignore
      (Pj_engine.Searcher.search_fragment ~k ~blockmax
         ~accept:(fun _ ->
           incr n;
           true)
         searcher scoring query);
    !n
  in
  let visited_ex = visited false and visited_bm = visited true in
  let candidate_speedup =
    float_of_int visited_ex /. float_of_int (Stdlib.max 1 visited_bm)
  in
  Runs.print_header
    (Printf.sprintf
       "bench-topk (%s): single-query latency, %d docs, candidates %d -> %d \
        (%.1fx)"
       name n_docs visited_ex visited_bm candidate_speedup)
    [ "latency"; "speedup"; "alloc B" ];
  let exhaustive =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (search ~blockmax:false ())))
  in
  Runs.print_row "exhaustive"
    [ Runs.seconds exhaustive.mean_s; "1.00x";
      Printf.sprintf "%.0f" exhaustive.alloc_bytes ];
  let blockmax =
    measure_point ~repetitions (fun () ->
        ignore (Sys.opaque_identity (search ~blockmax:true ())))
  in
  let speedup = exhaustive.mean_s /. Float.max 1e-12 blockmax.mean_s in
  Runs.print_row "blockmax"
    [ Runs.seconds blockmax.mean_s; Printf.sprintf "%.2fx" speedup;
      Printf.sprintf "%.0f" blockmax.alloc_bytes ];
  let json =
    Printf.sprintf
      "    %S: {\"exhaustive\": %s, \"blockmax\": %s, \"speedup\": %.3f, \
       \"candidates_exhaustive\": %d, \"candidates_blockmax\": %d, \
       \"candidate_speedup\": %.3f}"
      name (json_point exhaustive) (json_point blockmax) speedup visited_ex
      visited_bm candidate_speedup
  in
  (json, speedup, candidate_speedup)

let run ~quick ~repetitions =
  let n_docs = if quick then 2000 else 10_000 in
  let uniform_json, uniform_speedup, uniform_candidate_speedup =
    run_layout ~repetitions ~n_docs ~name:"uniform" `Uniform
  in
  let quality_json, quality_speedup, _ =
    run_layout ~repetitions ~n_docs ~name:"quality_ordered" `Quality_ordered
  in
  let skewed_json, _, _ =
    run_layout ~repetitions ~n_docs ~name:"impact_skewed" `Impact_skewed
  in
  let path = "BENCH_topk.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"n_docs\": %d,\n\
    \  \"k\": %d,\n\
    \  \"uniform_speedup\": %.3f,\n\
    \  \"uniform_candidate_speedup\": %.3f,\n\
    \  \"quality_ordered_speedup\": %.3f,\n\
    \  \"layouts\": {\n\
     %s,\n\
     %s,\n\
     %s\n\
    \  }\n\
     }\n"
    n_docs k uniform_speedup uniform_candidate_speedup quality_speedup
    uniform_json quality_json skewed_json;
  close_out oc;
  Printf.printf "[bench-topk] wrote %s\n" path
