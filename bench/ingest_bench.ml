(* bench-ingest: what live ingestion costs, and what it costs the
   readers. Three numbers matter:

   - ingest throughput (docs/s through [Live_index.add], auto-flush
     included): the write path's budget. Each add appends to the
     incremental postings builder — O(document tokens) — so
     throughput is flat in both [memtable_capacity] and corpus size;
     the flush cost amortizes over the capacity.
   - search latency under concurrent ingest (p50/p99): a second
     domain streams adds (flushing and merging as it goes) while the
     measuring domain searches. The writer is paced at the four-digit
     target rate (1000 docs/s) rather than flat out: the operational
     question is what readers pay while the index sustains its target
     ingest rate — an unpaced writer on a small box measures CPU
     time-slicing, not the engine (and the pre-incremental write path
     could not reach this rate at all). Documents arrive in small
     [add_batch] groups, the shape the server's group-commit ACK path
     delivers. Since queries read one
     immutable snapshot per call and never take the writer lock, the
     gap against the idle column bounds the real cost of snapshot
     churn (cache dilution, allocator pressure, merge work) rather
     than lock contention.
   - search latency over the quiesced index (p50/p99): the read path
     with no writers. Measured *after* the concurrent phase, over the
     final corpus, so the idle/ingest comparison isolates write churn
     instead of conflating it with corpus growth (the during-ingest
     searches see every document the idle ones do, and fewer early
     on).

   A final sanity assertion checks the quiesced live index returns
   structurally identical hits to a from-scratch build over the same
   surviving documents. Results land in BENCH_ingest.json. *)

let gen_doc rng ~strong =
  let len = 80 + Pj_util.Prng.int rng 120 in
  let tokens =
    Array.init len (fun _ -> Pj_workload.Textgen.random_filler rng)
  in
  let plant form p =
    if Pj_util.Prng.float rng 1. < p then begin
      let n = 1 + Pj_util.Prng.int rng 3 in
      for _ = 1 to n do
        tokens.(Pj_util.Prng.int rng len) <- form
      done
    end
  in
  plant "alfa" 0.9;
  plant "brav" 0.85;
  plant "charli" 0.8;
  if strong then begin
    let pos = Pj_util.Prng.int rng (len - 3) in
    tokens.(pos) <- "alpha";
    tokens.(pos + 1) <- "bravo";
    tokens.(pos + 2) <- "charlie"
  end;
  tokens

let gen_docs rng n =
  List.init n (fun i -> gen_doc rng ~strong:(i mod 25 = 0))

let percentile_ms latencies p =
  1000. *. Pj_util.Stats.percentile latencies p

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* One durability arm: ingest [docs] into a dir-backed index in
   50-doc [add_batch] groups — the server's group-commit shape, so
   WAL-on pays exactly one fsync per batch — then flush. Returns
   (elapsed seconds, wal fsyncs). *)
let durability_run ~wal docs =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pj-bench-wal-%d-%b" (Unix.getpid ()) wal)
  in
  rm_rf dir;
  let config =
    {
      Pj_live.Live_index.default_config with
      Pj_live.Live_index.memtable_capacity = 512;
      merge_threshold = 4;
      background_merge = true;
      merge_parallelism = 1;
      wal;
      fsync_policy = Pj_live.Wal.Per_batch;
    }
  in
  let live = Pj_live.Live_index.open_dir ~config dir in
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | d :: tl -> take (n - 1) (d :: acc) tl
  in
  let t0 = Pj_util.Timing.monotonic_now () in
  let rec go rest =
    match rest with
    | [] -> ()
    | _ ->
        let chunk, rest = take 50 [] rest in
        ignore (Pj_live.Live_index.add_batch live chunk);
        go rest
  in
  go docs;
  ignore (Pj_live.Live_index.flush live);
  let dt = Pj_util.Timing.monotonic_now () -. t0 in
  let stats = Pj_live.Live_index.stats live in
  Pj_live.Live_index.close live;
  rm_rf dir;
  (dt, stats.Pj_live.Live_index.wal_fsyncs)

let search_once live =
  Pj_live.Live_index.search ~k:Shard_bench.k live Shard_bench.scoring
    Shard_bench.query

let run ~quick ~repetitions =
  ignore repetitions;
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
  let n_docs = if quick then 400 else 10_000 in
  let n_concurrent = if quick then 400 else 10_000 in
  let idle_searches = if quick then 200 else 1000 in
  let rng = Pj_util.Prng.create 77 in
  let docs = gen_docs rng n_docs in
  (* Capacity 64 dated from the rebuild-per-add era, when a large
     memtable made every add slower; with O(doc) appends a deeper
     memtable just means fewer seals and less background merge churn,
     so the bench measures a production-shaped setting. *)
  let config =
    {
      Pj_live.Live_index.default_config with
      Pj_live.Live_index.memtable_capacity = 512;
      merge_threshold = 4;
      background_merge = true;
      (* Parallel pair builds only pay off with spare cores; this box
         reports [Domain.recommended_domain_count () = 1], where extra
         build domains just time-slice against the measuring reader. *)
      merge_parallelism =
        max 1 (min 2 (Domain.recommended_domain_count () - 2));
    }
  in
  let live = Pj_live.Live_index.create ~config () in
  (* --- ingest throughput (one writer, background merger running) --- *)
  let t0 = Pj_util.Timing.monotonic_now () in
  List.iter (fun doc -> ignore (Pj_live.Live_index.add live doc)) docs;
  ignore (Pj_live.Live_index.flush live);
  let ingest_s = Pj_util.Timing.monotonic_now () -. t0 in
  let docs_per_s = float_of_int n_docs /. ingest_s in
  Pj_live.Live_index.quiesce live;
  Runs.print_header
    (Printf.sprintf "bench-ingest: %d docs, memtable %d" n_docs
       config.Pj_live.Live_index.memtable_capacity)
    [ "total"; "docs/s" ];
  Runs.print_row "ingest"
    [ Runs.seconds ingest_s; Printf.sprintf "%.0f" docs_per_s ];
  (* --- sanity: quiesced live results == from-scratch build --------- *)
  let scratch = Pj_index.Corpus.create () in
  let scratch_vocab = Pj_index.Corpus.vocab scratch in
  List.iter
    (fun doc -> Array.iter (fun w -> ignore (Pj_text.Vocab.intern scratch_vocab w)) doc)
    docs;
  List.iter (fun doc -> ignore (Pj_index.Corpus.add_tokens scratch doc)) docs;
  let scratch_searcher =
    Pj_engine.Searcher.create (Pj_index.Inverted_index.build scratch)
  in
  let live_hits = search_once live in
  let scratch_hits =
    Pj_engine.Searcher.search ~k:Shard_bench.k scratch_searcher
      Shard_bench.scoring Shard_bench.query
  in
  assert (live_hits = scratch_hits);
  let observe () =
    let t0 = Pj_util.Timing.monotonic_now () in
    ignore (search_once live);
    Pj_util.Timing.monotonic_now () -. t0
  in
  ignore (observe ());
  (* --- search latency, under concurrent ingest --------------------- *)
  let stream = gen_docs rng n_concurrent in
  let stream_rate = 1000. (* docs/s — the issue's four-digit target *) in
  let ingesting = Atomic.make true in
  (* The stream arrives in small batches through [add_batch] — the
     arrival shape the server's group-commit ACK path produces — rather
     than one wakeup per document: per-doc pacing costs ~2000 context
     switches/s against the measuring reader, which swamps the engine
     cost being measured. The average rate is the same. *)
  let batch_docs = 50 in
  let writer =
    Domain.spawn (fun () ->
        let t0 = Pj_util.Timing.monotonic_now () in
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | d :: tl -> take (n - 1) (d :: acc) tl
        in
        let rec go i rest =
          match rest with
          | [] -> ()
          | _ ->
              let due = t0 +. (float_of_int i /. stream_rate) in
              let now = Pj_util.Timing.monotonic_now () in
              if due > now then Unix.sleepf (due -. now);
              let chunk, rest = take batch_docs [] rest in
              ignore (Pj_live.Live_index.add_batch live chunk);
              go (i + List.length chunk) rest
        in
        go 0 stream;
        ignore (Pj_live.Live_index.flush live);
        Atomic.set ingesting false)
  in
  let during = ref [] in
  while Atomic.get ingesting do
    during := observe () :: !during
  done;
  Domain.join writer;
  (* On a fast box the stream can drain before the first poll. *)
  if !during = [] then during := [ observe () ];
  let during = Array.of_list !during in
  (* --- search latency, idle (same final corpus, no writers) -------- *)
  Pj_live.Live_index.quiesce live;
  ignore (observe ());
  let idle = Array.init idle_searches (fun _ -> observe ()) in
  let stats = Pj_live.Live_index.stats live in
  Runs.print_header "bench-ingest: search latency" [ "p50"; "p99"; "n" ];
  Runs.print_row "idle"
    [
      Printf.sprintf "%.3f ms" (percentile_ms idle 50.);
      Printf.sprintf "%.3f ms" (percentile_ms idle 99.);
      string_of_int (Array.length idle);
    ];
  Runs.print_row
    (Printf.sprintf "ingest @ %.0f docs/s" stream_rate)
    [
      Printf.sprintf "%.3f ms" (percentile_ms during 50.);
      Printf.sprintf "%.3f ms" (percentile_ms during 99.);
      string_of_int (Array.length during);
    ];
  Pj_live.Live_index.close live;
  (* --- durability: what the write-ahead log costs ------------------- *)
  let n_dur = if quick then 400 else 4_000 in
  let dur_docs = gen_docs rng n_dur in
  let base_s, _ = durability_run ~wal:false dur_docs in
  let wal_s, wal_fsyncs = durability_run ~wal:true dur_docs in
  let base_rate = float_of_int n_dur /. base_s in
  let wal_rate = float_of_int n_dur /. wal_s in
  let wal_ratio = wal_rate /. base_rate in
  Runs.print_header
    (Printf.sprintf "bench-ingest: durability, %d docs, 50-doc batches"
       n_dur)
    [ "total"; "docs/s"; "fsyncs" ];
  Runs.print_row "wal off"
    [ Runs.seconds base_s; Printf.sprintf "%.0f" base_rate; "0" ];
  Runs.print_row "wal per-batch"
    [
      Runs.seconds wal_s;
      Printf.sprintf "%.0f" wal_rate;
      string_of_int wal_fsyncs;
    ];
  Printf.printf "[bench-ingest] wal-on throughput = %.0f%% of wal-off\n"
    (100. *. wal_ratio);
  let path = "BENCH_ingest.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"docs\": %d,\n\
    \  \"memtable_capacity\": %d,\n\
    \  \"ingest_s\": %.6f,\n\
    \  \"ingest_docs_per_s\": %.1f,\n\
    \  \"ingest_stream_rate_docs_per_s\": %.0f,\n\
    \  \"search_idle_p50_ms\": %.6f,\n\
    \  \"search_idle_p99_ms\": %.6f,\n\
    \  \"search_ingest_p50_ms\": %.6f,\n\
    \  \"search_ingest_p99_ms\": %.6f,\n\
    \  \"searches_during_ingest\": %d,\n\
    \  \"final_generation\": %d,\n\
    \  \"final_segments\": %d,\n\
    \  \"merges\": %d,\n\
    \  \"durability_docs\": %d,\n\
    \  \"ingest_wal_off_docs_per_s\": %.1f,\n\
    \  \"ingest_wal_docs_per_s\": %.1f,\n\
    \  \"wal_fsyncs\": %d,\n\
    \  \"wal_throughput_ratio\": %.3f\n\
     }\n"
    n_docs config.Pj_live.Live_index.memtable_capacity ingest_s docs_per_s
    stream_rate (percentile_ms idle 50.) (percentile_ms idle 99.)
    (percentile_ms during 50.)
    (percentile_ms during 99.)
    (Array.length during) stats.Pj_live.Live_index.generation
    stats.Pj_live.Live_index.segments stats.Pj_live.Live_index.merges n_dur
    base_rate wal_rate wal_fsyncs wal_ratio;
  close_out oc;
  Printf.printf "[bench-ingest] wrote %s\n" path
