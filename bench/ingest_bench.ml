(* bench-ingest: what live ingestion costs, and what it costs the
   readers. Three numbers matter:

   - ingest throughput (docs/s through [Live_index.add], auto-flush
     included): the write path's budget. Each add rebuilds the
     memtable's sparse index — O(memtable tokens) — so throughput is
     governed by [memtable_capacity], not corpus size.
   - search latency over the quiesced index (p50/p99): the read path
     with no writers, directly comparable to bench-shard.
   - search latency under concurrent ingest (p50/p99): a second
     domain streams adds (flushing and merging as it goes) while the
     measuring domain searches. Since queries read one immutable
     snapshot per call and never take the writer lock, the gap between
     the two columns bounds the real cost of snapshot churn (cache
     dilution, allocator pressure) rather than lock contention.

   A final sanity assertion checks the quiesced live index returns
   structurally identical hits to a from-scratch build over the same
   surviving documents. Results land in BENCH_ingest.json. *)

let gen_doc rng ~strong =
  let len = 80 + Pj_util.Prng.int rng 120 in
  let tokens =
    Array.init len (fun _ -> Pj_workload.Textgen.random_filler rng)
  in
  let plant form p =
    if Pj_util.Prng.float rng 1. < p then begin
      let n = 1 + Pj_util.Prng.int rng 3 in
      for _ = 1 to n do
        tokens.(Pj_util.Prng.int rng len) <- form
      done
    end
  in
  plant "alfa" 0.9;
  plant "brav" 0.85;
  plant "charli" 0.8;
  if strong then begin
    let pos = Pj_util.Prng.int rng (len - 3) in
    tokens.(pos) <- "alpha";
    tokens.(pos + 1) <- "bravo";
    tokens.(pos + 2) <- "charlie"
  end;
  tokens

let gen_docs rng n =
  List.init n (fun i -> gen_doc rng ~strong:(i mod 25 = 0))

let percentile_ms latencies p =
  1000. *. Pj_util.Stats.percentile latencies p

let search_once live =
  Pj_live.Live_index.search ~k:Shard_bench.k live Shard_bench.scoring
    Shard_bench.query

let run ~quick ~repetitions =
  ignore repetitions;
  let n_docs = if quick then 400 else 2000 in
  let n_concurrent = if quick then 400 else 2000 in
  let idle_searches = if quick then 200 else 1000 in
  let rng = Pj_util.Prng.create 77 in
  let docs = gen_docs rng n_docs in
  let config =
    {
      Pj_live.Live_index.default_config with
      Pj_live.Live_index.memtable_capacity = 64;
      merge_threshold = 4;
      background_merge = true;
    }
  in
  let live = Pj_live.Live_index.create ~config () in
  (* --- ingest throughput (one writer, background merger running) --- *)
  let t0 = Pj_util.Timing.monotonic_now () in
  List.iter (fun doc -> ignore (Pj_live.Live_index.add live doc)) docs;
  ignore (Pj_live.Live_index.flush live);
  let ingest_s = Pj_util.Timing.monotonic_now () -. t0 in
  let docs_per_s = float_of_int n_docs /. ingest_s in
  Pj_live.Live_index.quiesce live;
  Runs.print_header
    (Printf.sprintf "bench-ingest: %d docs, memtable %d" n_docs
       config.Pj_live.Live_index.memtable_capacity)
    [ "total"; "docs/s" ];
  Runs.print_row "ingest"
    [ Runs.seconds ingest_s; Printf.sprintf "%.0f" docs_per_s ];
  (* --- sanity: quiesced live results == from-scratch build --------- *)
  let scratch = Pj_index.Corpus.create () in
  let scratch_vocab = Pj_index.Corpus.vocab scratch in
  List.iter
    (fun doc -> Array.iter (fun w -> ignore (Pj_text.Vocab.intern scratch_vocab w)) doc)
    docs;
  List.iter (fun doc -> ignore (Pj_index.Corpus.add_tokens scratch doc)) docs;
  let scratch_searcher =
    Pj_engine.Searcher.create (Pj_index.Inverted_index.build scratch)
  in
  let live_hits = search_once live in
  let scratch_hits =
    Pj_engine.Searcher.search ~k:Shard_bench.k scratch_searcher
      Shard_bench.scoring Shard_bench.query
  in
  assert (live_hits = scratch_hits);
  (* --- search latency, idle ---------------------------------------- *)
  let observe () =
    let t0 = Pj_util.Timing.monotonic_now () in
    ignore (search_once live);
    Pj_util.Timing.monotonic_now () -. t0
  in
  ignore (observe ());
  let idle = Array.init idle_searches (fun _ -> observe ()) in
  (* --- search latency, under concurrent ingest --------------------- *)
  let stream = gen_docs rng n_concurrent in
  let ingesting = Atomic.make true in
  let writer =
    Domain.spawn (fun () ->
        List.iter (fun doc -> ignore (Pj_live.Live_index.add live doc)) stream;
        ignore (Pj_live.Live_index.flush live);
        Atomic.set ingesting false)
  in
  let during = ref [] in
  while Atomic.get ingesting do
    during := observe () :: !during
  done;
  Domain.join writer;
  (* On a fast box the stream can drain before the first poll. *)
  if !during = [] then during := [ observe () ];
  let during = Array.of_list !during in
  let stats = Pj_live.Live_index.stats live in
  Runs.print_header "bench-ingest: search latency" [ "p50"; "p99"; "n" ];
  Runs.print_row "idle"
    [
      Printf.sprintf "%.3f ms" (percentile_ms idle 50.);
      Printf.sprintf "%.3f ms" (percentile_ms idle 99.);
      string_of_int (Array.length idle);
    ];
  Runs.print_row "concurrent ingest"
    [
      Printf.sprintf "%.3f ms" (percentile_ms during 50.);
      Printf.sprintf "%.3f ms" (percentile_ms during 99.);
      string_of_int (Array.length during);
    ];
  Pj_live.Live_index.close live;
  let path = "BENCH_ingest.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"docs\": %d,\n\
    \  \"memtable_capacity\": %d,\n\
    \  \"ingest_s\": %.6f,\n\
    \  \"ingest_docs_per_s\": %.1f,\n\
    \  \"search_idle_p50_ms\": %.6f,\n\
    \  \"search_idle_p99_ms\": %.6f,\n\
    \  \"search_ingest_p50_ms\": %.6f,\n\
    \  \"search_ingest_p99_ms\": %.6f,\n\
    \  \"searches_during_ingest\": %d,\n\
    \  \"final_generation\": %d,\n\
    \  \"final_segments\": %d,\n\
    \  \"merges\": %d\n\
     }\n"
    n_docs config.Pj_live.Live_index.memtable_capacity ingest_s docs_per_s
    (percentile_ms idle 50.) (percentile_ms idle 99.)
    (percentile_ms during 50.)
    (percentile_ms during 99.)
    (Array.length during) stats.Pj_live.Live_index.generation
    stats.Pj_live.Live_index.segments stats.Pj_live.Live_index.merges;
  close_out oc;
  Printf.printf "[bench-ingest] wrote %s\n" path
